"""Read-only, zero-copy view of an ``.rdb`` slot array via ``np.memmap``.

Satisfies the lookup surface of
:class:`repro.hashing.table.LinearProbingTable` (``get``,
``lookup_batch``, ``contains_batch``, ``stats``, ``keys``/``items``,
``slot_arrays``) over memory-mapped arrays: nothing is copied into the
Python heap, pages fault in on first touch, and every process mapping
the same file shares one copy in the page cache.  Mutation is refused
-- the store is an immutable artifact; rebuild and atomically replace
it instead.
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

from repro.errors import DatabaseError
from repro.hashing.table import (
    EMPTY,
    TableStats,
    U8Array,
    U64Array,
    probe_get,
    probe_lookup_batch,
    stats_from_slots,
)
from repro.store.format import StoreHeader


class MmapTable:
    """Linear-probing lookups over the memory-mapped slot arrays.

    Drop-in for the lookup half of ``LinearProbingTable``; inserts
    raise :class:`DatabaseError`.
    """

    def __init__(self, path, header: StoreHeader) -> None:
        if not np.little_endian:  # pragma: no cover - LE-only format
            raise DatabaseError(
                f"database store {path} is little-endian; this host is "
                "big-endian and cannot map it"
            )
        self.path = path
        self.header = header
        self.missing_value = 255
        try:
            self._keys: U64Array = np.memmap(
                path,
                mode="r",
                dtype=np.uint64,
                offset=header.keys_offset,
                shape=(header.capacity,),
            )
            self._values: U8Array = np.memmap(
                path,
                mode="r",
                dtype=np.uint8,
                offset=header.values_offset,
                shape=(header.capacity,),
            )
        except (OSError, ValueError) as exc:
            raise DatabaseError(
                f"database store {path} could not be mapped: {exc}"
            ) from exc

    # ------------------------------------------------------------------
    # Capacity
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self.header.capacity

    @property
    def capacity_bits(self) -> int:
        return self.header.capacity_bits

    def __len__(self) -> int:
        return self.header.count

    @property
    def load_factor(self) -> float:
        return self.header.count / self.header.capacity

    # ------------------------------------------------------------------
    # Lookups (shared probe implementations: byte-identical to the
    # in-RAM table by construction)
    # ------------------------------------------------------------------
    def get(self, key: int, default: "int | None" = None) -> "int | None":
        return probe_get(self._keys, self._values, key, default)

    def __contains__(self, key: int) -> bool:
        return self.get(key) is not None

    def lookup_batch(self, keys: npt.ArrayLike) -> U8Array:
        return probe_lookup_batch(
            self._keys, self._values, keys, self.missing_value
        )

    def contains_batch(self, keys: npt.ArrayLike) -> npt.NDArray[np.bool_]:
        return self.lookup_batch(keys) != self.missing_value

    # ------------------------------------------------------------------
    # Mutation is refused
    # ------------------------------------------------------------------
    def insert(self, key: int, value: int) -> bool:
        raise DatabaseError(
            f"database store {self.path} is a read-only mapping; "
            "rebuild the store to change it"
        )

    def insert_batch(self, keys, values) -> int:
        raise DatabaseError(
            f"database store {self.path} is a read-only mapping; "
            "rebuild the store to change it"
        )

    def reserve(self, expected_count: int) -> None:
        raise DatabaseError(
            f"database store {self.path} is a read-only mapping; "
            "rebuild the store to change it"
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def keys(self) -> U64Array:
        """All stored keys (materialized copy; faults the whole map)."""
        keys = np.asarray(self._keys)
        return keys[keys != EMPTY].copy()

    def items(self) -> tuple[U64Array, U8Array]:
        keys = np.asarray(self._keys)
        occupied = keys != EMPTY
        return keys[occupied].copy(), np.asarray(self._values)[occupied].copy()

    def stats(self) -> TableStats:
        """Table 2-style statistics (scans the whole mapping)."""
        return stats_from_slots(self._keys, value_bytes=self.capacity)

    def slot_arrays(self) -> tuple[U64Array, U8Array]:
        """The raw mapped (keys, values) slot arrays (read-only views)."""
        return self._keys, self._values


__all__ = ["MmapTable"]
