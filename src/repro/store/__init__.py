"""Versioned on-disk database stores (``.rdb``) with zero-copy mapping.

The ``.rdb`` flat binary format persists the optimal-circuit database's
open-addressing slot array verbatim, so an ``np.memmap`` over the file
probes byte-identically to the in-RAM table: cold start is
O(page-fault) instead of O(table-build), and every process mapping the
same store shares one copy of it in the page cache.  See
``docs/DATABASE.md`` for the format layout and sharing semantics.

Public surface:

- :func:`open_database` / :func:`map_database` -- open a store
  (``.rdb`` maps zero-copy, legacy ``.npz`` loads into RAM)
- :func:`write_rdb` / :func:`convert` -- produce stores crash-safely
- :func:`verify_store` / :func:`describe` -- integrity and Table 2 stats
- :class:`MmapTable` -- the read-only mapped table itself
"""

from repro.store.format import (
    HEADER_SIZE,
    MAX_K,
    RDB_MAGIC,
    RDB_VERSION,
    StoreHeader,
    read_header,
)
from repro.store.mapped import is_mapped, map_database, mapped_path
from repro.store.mmap_table import MmapTable
from repro.store.registry import (
    FORMAT_NPZ,
    FORMAT_RDB,
    StoreInfo,
    convert,
    describe,
    open_database,
    rdb_sidecar,
    resolve_store,
    store_format,
    verify_store,
)
from repro.store.writer import payload_checksum, write_rdb

__all__ = [
    "FORMAT_NPZ",
    "FORMAT_RDB",
    "HEADER_SIZE",
    "MAX_K",
    "MmapTable",
    "RDB_MAGIC",
    "RDB_VERSION",
    "StoreHeader",
    "StoreInfo",
    "convert",
    "describe",
    "is_mapped",
    "map_database",
    "mapped_path",
    "open_database",
    "payload_checksum",
    "rdb_sidecar",
    "read_header",
    "resolve_store",
    "store_format",
    "verify_store",
    "write_rdb",
]
