"""Domain-aware static analysis for the repro codebase.

The paper's packed-word arithmetic (Section 3.3) is only correct when
every intermediate value is truncated to 64 bits -- in C the hardware
does it, in Python nothing does, so an unmasked ``<<``/``+``/``~`` on a
packed word is a silent correctness bug.  Likewise the service daemon's
lock-guarded shared state and the reproducibility guarantees of the
synthesis engine are invariants no general-purpose linter understands.

``repro.checks`` is a small AST-based framework that encodes those
invariants as lint rules:

* **mask64** -- arithmetic on values derived from packed 64-bit words
  must flow through ``mask64``/an explicit ``& MASK64``.
* **lock-discipline** -- shared attributes must not be mutated both
  inside and outside ``with self._lock`` blocks, and blocking calls must
  not be made while a lock is held.
* **determinism** -- no unseeded randomness or wall-clock reads in
  synthesis/worker compute paths.
* **api-misuse** -- bare ``except:``, mutable default arguments, and
  canonical-table lookups not routed through a canonical representative.
* **todo-tracking** -- ``TODO``/``FIXME``/``XXX`` comments must carry a
  tracking reference.

With ``--graph`` a whole-program pass (:mod:`repro.checks.graph`) adds
cross-module rules on top of the per-file ones: ``lock-order-cycle``
(an interprocedural deadlock detector), ``cross-unmasked-op`` (mask64
taint that survives call boundaries), and ``layer-violation`` (the
declarative architecture DAG from ``[tool.repro.checks]``).  The
``repro arch`` subcommand dumps the underlying import/lock graphs.

Run it as ``repro check <paths>`` (or ``python -m repro check``).
Findings are suppressed inline with ``# repro: allow[rule-id] reason``;
the reason is mandatory.  See ``docs/CHECKS.md`` for the full rule
reference.
"""

from __future__ import annotations

from repro.checks.config import CheckConfig, load_config
from repro.checks.findings import Finding, Severity
from repro.checks.registry import (
    ProjectRule,
    Rule,
    all_rules,
    get_rule,
    register,
)
from repro.checks.report import render_json, render_sarif, render_text
from repro.checks.runner import (
    CheckReport,
    changed_python_files,
    check_paths,
    check_source,
)

__all__ = [
    "CheckConfig",
    "CheckReport",
    "Finding",
    "ProjectRule",
    "Rule",
    "Severity",
    "all_rules",
    "changed_python_files",
    "check_paths",
    "check_source",
    "get_rule",
    "load_config",
    "register",
    "render_json",
    "render_sarif",
    "render_text",
]
