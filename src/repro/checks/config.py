"""Configuration for the checkers: rule scopes, exemptions, knobs.

Every rule family has a *scope* -- path fragments a file must match for
the rule to run -- and some have exemption lists (e.g. metrics code is
allowed to read the wall clock).  The defaults below encode this
repository's layout; a ``[tool.repro.checks]`` table in ``pyproject.toml``
can override any field, so the policy lives with the code it governs::

    [tool.repro.checks]
    determinism-exempt = ["repro/service/metrics.py"]
    mask64-word-names = ["word", "p", "q", "key"]
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field, fields, replace
from pathlib import Path


def _tuple(*items: str) -> tuple[str, ...]:
    return tuple(items)


@dataclass(frozen=True)
class CheckConfig:
    """All knobs, with repo-tuned defaults.

    Scope entries are path fragments compared against the posix form of
    each checked file; an empty scope means "every file".
    """

    # --- mask64 ------------------------------------------------------
    #: Files where packed-word mask discipline is enforced.
    mask64_scope: tuple[str, ...] = _tuple("repro/core/", "repro/hashing/")
    #: Parameter/attribute names treated as packed 64-bit words (taint
    #: sources for the mask64 analysis).
    mask64_word_names: tuple[str, ...] = _tuple(
        "word", "words", "p", "q", "key", "keys", "cur", "best", "canon"
    )
    #: Names accepted as masking constants in ``value & NAME``.
    mask64_mask_names: tuple[str, ...] = _tuple(
        "MASK64", "NIBBLE_MASK", "mask", "MASK"
    )
    #: Calls that truncate their argument to 64 bits.
    mask64_masking_calls: tuple[str, ...] = _tuple("mask64",)
    #: Function-name suffixes exempt from the rule (numpy uint64 code
    #: wraps modulo 2**64 in hardware, no explicit mask needed).
    mask64_exempt_suffixes: tuple[str, ...] = _tuple("_np",)

    # --- lock-discipline ---------------------------------------------
    #: Files where lock discipline is enforced.
    lock_scope: tuple[str, ...] = _tuple("repro/service/",)
    #: Attribute-name fragments recognized as locks/conditions in
    #: ``with self.<name>:`` blocks.
    lock_names: tuple[str, ...] = _tuple("lock", "mutex", "cond", "not_empty")
    #: Method names considered blocking when called while a lock is held.
    blocking_methods: tuple[str, ...] = _tuple(
        "recv", "recv_into", "accept", "connect", "sendall",
        "wait", "join", "sleep", "map", "apply", "apply_async", "select",
    )
    #: ``.get``/``.put`` only count as blocking on receivers whose name
    #: contains one of these fragments (a ``queue``, not a ``dict``).
    blocking_queue_receivers: tuple[str, ...] = _tuple("queue",)
    #: Methods exempt from __init__-style construction (never checked).
    lock_init_methods: tuple[str, ...] = _tuple(
        "__init__", "__post_init__", "__new__"
    )
    #: Files where every wait()/join() must carry a timeout (the
    #: unbounded-wait rule): the service layer's no-hung-thread policy.
    wait_scope: tuple[str, ...] = _tuple("repro/service/",)
    #: Method names the unbounded-wait rule treats as waits.
    wait_methods: tuple[str, ...] = _tuple("wait", "join")

    # --- determinism -------------------------------------------------
    #: Compute paths that must stay deterministic.
    determinism_scope: tuple[str, ...] = _tuple(
        "repro/core/", "repro/hashing/", "repro/synth/", "repro/analysis/",
        "repro/rng/", "repro/sat/", "repro/stabilizer/", "repro/apps/",
        "repro/io/", "repro/engines/", "repro/service/workers.py",
    )
    #: Files inside the scope that may read clocks/entropy (metrics and
    #: other observability code).
    determinism_exempt: tuple[str, ...] = _tuple(
        "repro/service/metrics.py",
    )
    #: ``time`` functions that are allowed (monotonic timing is fine;
    #: wall-clock reads are not).
    allowed_time_functions: tuple[str, ...] = _tuple(
        "time.monotonic", "time.monotonic_ns", "time.perf_counter",
        "time.perf_counter_ns", "time.process_time", "time.process_time_ns",
        "time.sleep",
    )

    # --- api-misuse --------------------------------------------------
    #: Name fragments marking a value as already canonicalized when it
    #: is passed to a canonical-table lookup.
    canonical_arg_names: tuple[str, ...] = _tuple("canon", "key", "rep")
    #: Callable-name fragments whose results count as canonicalized.
    canonical_call_names: tuple[str, ...] = _tuple("canonical",)
    #: Method names that perform raw canonical-table lookups.
    canonical_lookup_methods: tuple[str, ...] = _tuple(
        "get", "lookup_batch", "contains_batch", "size_of_canonical"
    )

    # --- engine-layering ---------------------------------------------
    #: Names whose import marks a direct dependency on a concrete
    #: synthesis engine (classes and entry-point functions).
    layering_engine_names: tuple[str, ...] = _tuple(
        "OptimalSynthesizer", "DepthOptimalSynthesizer",
        "CostOptimalSynthesizer", "LinearSynthesizer", "CliffordSynthesizer",
        "mmd_synthesize", "mmd_best_of_both", "sat_synthesize",
        "sat_synthesize_fixed_size", "plain_bfs", "wide_bfs",
        "wide_synthesize",
    )
    #: Path fragments allowed to import them: the engine adapters, the
    #: packages that define them, and the top-level public re-export.
    layering_allowed: tuple[str, ...] = _tuple(
        "repro/engines/", "repro/synth/", "repro/sat/", "repro/stabilizer/",
        "repro/__init__.py",
    )

    # --- store-layering ----------------------------------------------
    #: Path fragments allowed to call numpy persistence primitives on
    #: database files: the store subsystem and the legacy .npz codec.
    store_allowed: tuple[str, ...] = _tuple(
        "repro/store/", "repro/synth/database.py"
    )
    #: numpy attribute calls treated as database persistence primitives
    #: when invoked as ``np.<name>`` / ``numpy.<name>``.
    store_persistence_calls: tuple[str, ...] = _tuple(
        "load", "save", "savez", "savez_compressed", "memmap", "open_memmap"
    )

    # --- architecture (layer DAG) ------------------------------------
    #: Layer definitions: ``"name: fragment [fragment ...]"``.  A module
    #: belongs to the layer owning the longest fragment found in its
    #: path; unmatched modules are unconstrained.
    arch_layers: tuple[str, ...] = _tuple(
        "foundation: repro/errors.py",
        "perf: repro/perf/",
        "core: repro/core/",
        "hashing: repro/hashing/",
        "rng: repro/rng/",
        "store: repro/store/",
        "sat: repro/sat/",
        "stabilizer: repro/stabilizer/",
        "synth: repro/synth/",
        "engines: repro/engines/",
        "public: repro/__init__.py",
        "analysis: repro/analysis/",
        "apps: repro/apps/",
        "io: repro/io/",
        "data: repro/benchmarks_data/",
        "service: repro/service/",
        "checks: repro/checks/",
        "app: repro/cli.py repro/__main__.py",
    )
    #: Allowed module-scope (top-level) dependencies per layer:
    #: ``"layer -> dep [dep ...]"``.  Same-layer imports are always
    #: allowed; lazy (function-scoped) imports are exempt from the DAG.
    arch_allow: tuple[str, ...] = _tuple(
        "perf -> foundation",
        "core -> foundation perf",
        "hashing -> foundation",
        "rng -> core foundation",
        "store -> foundation hashing perf",
        "sat -> core foundation",
        "stabilizer -> foundation",
        "synth -> core foundation hashing perf rng",
        "engines -> core foundation perf sat synth",
        "public -> core foundation synth",
        "analysis -> core foundation rng",
        "apps -> core foundation",
        "io -> core foundation",
        "data -> core",
        "service -> core engines foundation perf public synth",
        "checks -> foundation",
        "app -> foundation public",
    )

    # --- todo-tracking -----------------------------------------------
    #: Markers that must carry a tracking reference.
    todo_markers: tuple[str, ...] = _tuple("TODO", "FIXME", "XXX")

    # --- global ------------------------------------------------------
    #: Per-rule scope overrides: rule id -> path fragments.
    scopes: dict = field(default_factory=dict)
    #: Path fragments excluded from every rule.
    exclude: tuple[str, ...] = _tuple(
        "/tests/", "/benchmarks/", "/examples/", "/scripts/"
    )

    def in_scope(self, path: str, scope: tuple[str, ...]) -> bool:
        """True when ``path`` (posix form) matches ``scope``."""
        if any(fragment in path for fragment in self.exclude):
            return False
        if not scope:
            return True
        return any(fragment in path for fragment in scope)


#: Mapping from pyproject keys ([tool.repro.checks]) to config fields.
_PYPROJECT_KEYS = {
    "mask64-scope": "mask64_scope",
    "mask64-word-names": "mask64_word_names",
    "mask64-mask-names": "mask64_mask_names",
    "mask64-exempt-suffixes": "mask64_exempt_suffixes",
    "lock-scope": "lock_scope",
    "lock-names": "lock_names",
    "blocking-methods": "blocking_methods",
    "wait-scope": "wait_scope",
    "wait-methods": "wait_methods",
    "determinism-scope": "determinism_scope",
    "determinism-exempt": "determinism_exempt",
    "allowed-time-functions": "allowed_time_functions",
    "canonical-arg-names": "canonical_arg_names",
    "layering-engine-names": "layering_engine_names",
    "layering-allowed": "layering_allowed",
    "store-allowed": "store_allowed",
    "store-calls": "store_persistence_calls",
    "arch-layers": "arch_layers",
    "arch-allow": "arch_allow",
    "todo-markers": "todo_markers",
    "exclude": "exclude",
}


def load_config(root: "Path | str | None" = None) -> CheckConfig:
    """Build a config, merging ``[tool.repro.checks]`` from pyproject.toml.

    ``root`` is the directory searched for pyproject.toml (defaults to
    the current directory); a missing file or section yields defaults.
    """
    config = CheckConfig()
    base = Path(root) if root is not None else Path.cwd()
    pyproject = base / "pyproject.toml"
    if not pyproject.is_file():
        return config
    if sys.version_info < (3, 11):  # pragma: no cover - py3.10 fallback
        return config
    import tomllib

    try:
        data = tomllib.loads(pyproject.read_text(encoding="utf-8"))
    except (OSError, tomllib.TOMLDecodeError):  # pragma: no cover
        return config
    section = data.get("tool", {}).get("repro", {}).get("checks", {})
    if not isinstance(section, dict):
        return config
    updates: dict = {}
    for key, value in section.items():
        target = _PYPROJECT_KEYS.get(key)
        if target is None:
            continue
        if isinstance(value, list):
            updates[target] = tuple(str(v) for v in value)
    valid = {f.name for f in fields(CheckConfig)}
    updates = {k: v for k, v in updates.items() if k in valid}
    return replace(config, **updates) if updates else config


__all__ = ["CheckConfig", "load_config"]
