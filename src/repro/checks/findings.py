"""The :class:`Finding` value type shared by all rules and reporters."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Severity(enum.Enum):
    """How a finding affects the exit code: errors fail the run."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Finding:
    """One diagnostic emitted by a rule at a source location.

    Attributes:
        path: Posix-style path of the offending file.
        line: 1-based line number.
        col: 0-based column offset.
        rule_id: Stable identifier used in ``allow[...]`` suppressions.
        family: Rule family (mask64, lock-discipline, determinism, ...).
        message: Human-readable description of the violation.
        severity: ERROR findings fail ``repro check``; WARNINGs do not.
    """

    path: str
    line: int
    col: int
    rule_id: str
    family: str
    message: str
    severity: Severity = Severity.ERROR

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule_id)

    def format(self) -> str:
        """The canonical single-line rendering used by the text reporter."""
        return (
            f"{self.path}:{self.line}:{self.col + 1}: "
            f"{self.severity} [{self.rule_id}] {self.message}"
        )

    def to_dict(self) -> dict:
        """JSON-serializable form (stable key order via the reporter)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "family": self.family,
            "severity": str(self.severity),
            "message": self.message,
        }


__all__ = ["Finding", "Severity"]
