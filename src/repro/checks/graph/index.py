"""Per-file symbol index: the cacheable unit of the whole-program pass.

One :class:`FileIndex` captures everything the graph layer needs to know
about a file *without* keeping its AST around: the module name derived
from its path, import-alias bindings, class/function definitions, call
sites (with the locks held at each one), lock acquisitions (with the
locks already held), and ``self.attr = ClassName(...)`` constructor
assignments used to resolve attribute method calls.

The index is a pure value: built from an AST by :func:`build_file_index`,
round-tripped through JSON by :meth:`FileIndex.to_json` /
:meth:`FileIndex.from_json` so :mod:`repro.checks.graph.cache` can key
it on content hash.  Bump :data:`INDEX_VERSION` whenever the shape or
the extraction semantics change -- stale cache entries are then misses.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.checks.astutil import expr_text, is_lock_expr

#: Cache-format version; bump on any change to extraction or shape.
INDEX_VERSION = 1


@dataclass(frozen=True)
class ImportEdge:
    """One import binding: ``import m`` or ``from m import n as a``."""

    module: str
    name: "str | None"
    alias: str
    line: int
    top_level: bool

    def to_json(self) -> "dict[str, object]":
        return {
            "module": self.module,
            "name": self.name,
            "alias": self.alias,
            "line": self.line,
            "top_level": self.top_level,
        }

    @staticmethod
    def from_json(data: "dict[str, object]") -> "ImportEdge":
        return ImportEdge(
            module=str(data["module"]),
            name=None if data["name"] is None else str(data["name"]),
            alias=str(data["alias"]),
            line=int(data["line"]),  # type: ignore[call-overload]
            top_level=bool(data["top_level"]),
        )


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function body.

    ``callee`` is the raw dotted text (``self._batcher.put``,
    ``mask64``); resolution to a defined function happens at project
    level.  ``held`` is the tuple of lock tokens held locally at the
    call site, in acquisition order.
    """

    callee: str
    line: int
    col: int
    held: tuple[str, ...]

    def to_json(self) -> "dict[str, object]":
        return {
            "callee": self.callee,
            "line": self.line,
            "col": self.col,
            "held": list(self.held),
        }

    @staticmethod
    def from_json(data: "dict[str, object]") -> "CallSite":
        return CallSite(
            callee=str(data["callee"]),
            line=int(data["line"]),  # type: ignore[call-overload]
            col=int(data["col"]),  # type: ignore[call-overload]
            held=tuple(str(h) for h in data["held"]),  # type: ignore[union-attr]
        )


@dataclass(frozen=True)
class LockAcquire:
    """One ``with <lock>:`` entry, with the locks already held."""

    lock: str
    line: int
    col: int
    held: tuple[str, ...]

    def to_json(self) -> "dict[str, object]":
        return {
            "lock": self.lock,
            "line": self.line,
            "col": self.col,
            "held": list(self.held),
        }

    @staticmethod
    def from_json(data: "dict[str, object]") -> "LockAcquire":
        return LockAcquire(
            lock=str(data["lock"]),
            line=int(data["line"]),  # type: ignore[call-overload]
            col=int(data["col"]),  # type: ignore[call-overload]
            held=tuple(str(h) for h in data["held"]),  # type: ignore[union-attr]
        )


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method definition."""

    qualname: str
    cls: "str | None"
    name: str
    line: int
    params: tuple[str, ...]
    calls: tuple[CallSite, ...]
    acquires: tuple[LockAcquire, ...]

    def to_json(self) -> "dict[str, object]":
        return {
            "qualname": self.qualname,
            "cls": self.cls,
            "name": self.name,
            "line": self.line,
            "params": list(self.params),
            "calls": [c.to_json() for c in self.calls],
            "acquires": [a.to_json() for a in self.acquires],
        }

    @staticmethod
    def from_json(data: "dict[str, object]") -> "FunctionInfo":
        return FunctionInfo(
            qualname=str(data["qualname"]),
            cls=None if data["cls"] is None else str(data["cls"]),
            name=str(data["name"]),
            line=int(data["line"]),  # type: ignore[call-overload]
            params=tuple(str(p) for p in data["params"]),  # type: ignore[union-attr]
            calls=tuple(
                CallSite.from_json(c) for c in data["calls"]  # type: ignore[union-attr]
            ),
            acquires=tuple(
                LockAcquire.from_json(a) for a in data["acquires"]  # type: ignore[union-attr]
            ),
        )


@dataclass(frozen=True)
class ClassInfo:
    """One class definition: bases and constructor-assigned attr types."""

    name: str
    line: int
    bases: tuple[str, ...]
    #: ``self.<attr> = <Ctor>(...)`` assignments seen in any method:
    #: attr name -> raw dotted constructor text, resolved at project level.
    attr_types: "dict[str, str]" = field(default_factory=dict)

    def to_json(self) -> "dict[str, object]":
        return {
            "name": self.name,
            "line": self.line,
            "bases": list(self.bases),
            "attr_types": dict(self.attr_types),
        }

    @staticmethod
    def from_json(data: "dict[str, object]") -> "ClassInfo":
        return ClassInfo(
            name=str(data["name"]),
            line=int(data["line"]),  # type: ignore[call-overload]
            bases=tuple(str(b) for b in data["bases"]),  # type: ignore[union-attr]
            attr_types={
                str(k): str(v)
                for k, v in data["attr_types"].items()  # type: ignore[union-attr]
            },
        )


@dataclass(frozen=True)
class FileIndex:
    """Everything the graph layer keeps about one source file."""

    path: str
    module: str
    imports: tuple[ImportEdge, ...]
    functions: tuple[FunctionInfo, ...]
    classes: tuple[ClassInfo, ...]

    def to_json(self) -> "dict[str, object]":
        return {
            "version": INDEX_VERSION,
            "path": self.path,
            "module": self.module,
            "imports": [i.to_json() for i in self.imports],
            "functions": [f.to_json() for f in self.functions],
            "classes": [c.to_json() for c in self.classes],
        }

    @staticmethod
    def from_json(data: "dict[str, object]") -> "FileIndex":
        if data.get("version") != INDEX_VERSION:
            raise ValueError(
                f"index version mismatch: {data.get('version')!r} "
                f"!= {INDEX_VERSION}"
            )
        return FileIndex(
            path=str(data["path"]),
            module=str(data["module"]),
            imports=tuple(
                ImportEdge.from_json(i) for i in data["imports"]  # type: ignore[union-attr]
            ),
            functions=tuple(
                FunctionInfo.from_json(f) for f in data["functions"]  # type: ignore[union-attr]
            ),
            classes=tuple(
                ClassInfo.from_json(c) for c in data["classes"]  # type: ignore[union-attr]
            ),
        )


def module_name_for(path: str) -> str:
    """Dotted module name derived from a posix path.

    Everything after the last ``src/`` segment (the repo's package
    root); the whole relative path otherwise, so scripts and benchmarks
    become ``scripts.foo``-style pseudo-modules that simply never match
    a ``repro``-scoped layer.
    """
    posix = path.replace("\\", "/")
    if "/src/" in posix:
        posix = posix.rsplit("/src/", 1)[1]
    elif posix.startswith("src/"):
        posix = posix[len("src/"):]
    posix = posix.removesuffix(".py")
    parts = [p for p in posix.split("/") if p and p not in (".", "..")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else posix


def _resolve_relative(
    module: "str | None", level: int, current: str, is_package: bool
) -> "str | None":
    """Absolute module for a ``from . import x``-style relative import."""
    if level == 0:
        return module
    parts = current.split(".")
    package = parts if is_package else parts[:-1]
    # level 1 = current package, 2 = its parent, ...
    if len(package) < level - 1 or (len(package) == 0 and module is None):
        return None
    base = package[: len(package) - (level - 1)]
    if module:
        return ".".join(base + [module]) if base else module
    return ".".join(base) if base else None


class _FunctionScan(ast.NodeVisitor):
    """Walk one function body collecting calls, lock acquisitions, and
    ``self.attr = Ctor(...)`` assignments, tracking held locks.

    Nested function/lambda bodies are not descended into: they execute
    later, under whatever locks *their* callers hold (same semantics as
    the per-file lock rules).
    """

    def __init__(
        self,
        lock_names: tuple[str, ...],
        lock_token: "LockTokenizer",
    ) -> None:
        self.lock_names = lock_names
        self.lock_token = lock_token
        self.lock_stack: "list[str]" = []
        self.calls: "list[CallSite]" = []
        self.acquires: "list[LockAcquire]" = []
        self.attr_ctors: "dict[str, str]" = {}

    def visit_With(self, node: ast.With) -> None:
        acquired: "list[str]" = []
        for item in node.items:
            if not is_lock_expr(item.context_expr, self.lock_names):
                continue
            raw = expr_text(item.context_expr)
            if raw is None:
                continue
            token = self.lock_token(raw)
            self.acquires.append(LockAcquire(
                lock=token,
                line=item.context_expr.lineno,
                col=item.context_expr.col_offset,
                held=tuple(self.lock_stack),
            ))
            acquired.append(token)
            self.lock_stack.append(token)
        for stmt in node.body:
            self.visit(stmt)
        for _ in acquired:
            self.lock_stack.pop()

    visit_AsyncWith = visit_With  # type: ignore[assignment]

    def visit_Call(self, node: ast.Call) -> None:
        callee = expr_text(node.func)
        if callee is not None:
            self.calls.append(CallSite(
                callee=callee,
                line=node.lineno,
                col=node.col_offset,
                held=tuple(self.lock_stack),
            ))
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        if isinstance(node.value, ast.Call):
            ctor = expr_text(node.value.func)
            if ctor is not None:
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        self.attr_ctors[target.attr] = ctor
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        return

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        return

    def visit_Lambda(self, node: ast.Lambda) -> None:
        return


class LockTokenizer:
    """Canonicalize a raw lock expression to a project-unique token.

    ``self._lock`` inside class ``C`` of module ``m`` becomes
    ``m.C._lock`` (shared across the class's methods); a module-level
    name becomes ``m.NAME``; anything else is scoped to the enclosing
    function (``m.C.f:<raw>``) so unrelated receivers never alias.
    """

    def __init__(self, module: str, cls: "str | None", func: str) -> None:
        self.module = module
        self.cls = cls
        self.func = func

    def __call__(self, raw: str) -> str:
        parts = raw.split(".")
        if parts[0] == "self" and self.cls is not None and len(parts) == 2:
            return f"{self.module}.{self.cls}.{parts[1]}"
        if len(parts) == 1:
            return f"{self.module}.{parts[0]}"
        qual = f"{self.cls}.{self.func}" if self.cls else self.func
        return f"{self.module}.{qual}:{raw}"


def _params_of(func: "ast.FunctionDef | ast.AsyncFunctionDef") -> tuple[str, ...]:
    args = func.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    if names and names[0] in ("self", "cls"):
        names = names[1:]
    return tuple(names)


def build_file_index(
    path: str,
    tree: ast.Module,
    lock_names: tuple[str, ...],
) -> FileIndex:
    """Extract the :class:`FileIndex` of one parsed file."""
    posix = path.replace("\\", "/")
    module = module_name_for(posix)
    is_package = posix.endswith("__init__.py")
    imports: "list[ImportEdge]" = []
    functions: "list[FunctionInfo]" = []
    classes: "list[ClassInfo]" = []

    def scan_imports(node: ast.stmt, top_level: bool) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                imports.append(ImportEdge(
                    module=alias.name,
                    name=None,
                    alias=alias.asname or alias.name.split(".")[0],
                    line=node.lineno,
                    top_level=top_level,
                ))
        elif isinstance(node, ast.ImportFrom):
            target = _resolve_relative(
                node.module, node.level, module, is_package
            )
            if target is None:
                return
            for alias in node.names:
                imports.append(ImportEdge(
                    module=target,
                    name=alias.name,
                    alias=alias.asname or alias.name,
                    line=node.lineno,
                    top_level=top_level,
                ))

    def scan_function(
        func: "ast.FunctionDef | ast.AsyncFunctionDef",
        cls: "ClassInfo | None",
    ) -> None:
        tokenizer = LockTokenizer(
            module, cls.name if cls else None, func.name
        )
        scan = _FunctionScan(lock_names, tokenizer)
        for stmt in func.body:
            scan.visit(stmt)
        qualname = f"{cls.name}.{func.name}" if cls else func.name
        functions.append(FunctionInfo(
            qualname=qualname,
            cls=cls.name if cls else None,
            name=func.name,
            line=func.lineno,
            params=_params_of(func),
            calls=tuple(scan.calls),
            acquires=tuple(scan.acquires),
        ))
        if cls is not None:
            cls.attr_types.update(scan.attr_ctors)

    for node in ast.walk(tree):
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            scan_imports(node, top_level=node in tree.body)

    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scan_function(node, None)
        elif isinstance(node, ast.ClassDef):
            bases = tuple(
                text for text in (expr_text(b) for b in node.bases)
                if text is not None
            )
            info = ClassInfo(name=node.name, line=node.lineno, bases=bases)
            classes.append(info)
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    scan_function(item, info)

    return FileIndex(
        path=posix,
        module=module,
        imports=tuple(imports),
        functions=tuple(functions),
        classes=tuple(classes),
    )


__all__ = [
    "INDEX_VERSION",
    "CallSite",
    "ClassInfo",
    "FileIndex",
    "FunctionInfo",
    "ImportEdge",
    "LockAcquire",
    "LockTokenizer",
    "build_file_index",
    "module_name_for",
]
