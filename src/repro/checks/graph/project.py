"""Project index: whole-program graphs derived from per-file indexes.

:func:`build_project` turns a set of parsed (or cached) files into one
:class:`ProjectIndex`, which lazily derives:

* **import graph** -- module -> module edges with line numbers, split
  into top-level (import-time) and lazy (function-scoped) edges;
* **call graph** -- resolved call edges.  Resolution is deliberately
  conservative: a call links to a definition only when the receiver is
  provably known (module-local names, import aliases, ``self.method``
  within the class and its project-local bases, ``self.attr.method``
  through a recorded ``self.attr = ClassName(...)`` assignment, and
  ``Class(...)`` constructors).  Anything else stays unresolved rather
  than guessing -- false edges would manufacture false deadlocks;
* **lock graph** -- the held-while-acquiring relation: an edge
  ``A -> B`` means some execution path holds lock ``A`` while acquiring
  lock ``B``.  Locks held at a call site propagate into the callee
  (transitively, to a fixpoint), so an acquisition in a callee three
  frames down still sees the caller's locks.  A cycle in this relation
  is a deadlock schedule.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.checks.config import CheckConfig
from repro.checks.graph.cache import IndexCache, config_digest
from repro.checks.graph.index import (
    CallSite,
    FileIndex,
    FunctionInfo,
    build_file_index,
)


@dataclass(frozen=True)
class ImportGraphEdge:
    """One module-level dependency edge."""

    src: str
    dst: str
    path: str
    line: int
    top_level: bool


@dataclass(frozen=True)
class CallEdge:
    """One resolved call edge between project-defined functions."""

    caller: str  #: module-qualified, e.g. ``repro.service.daemon.TCPDaemon.stop``
    callee: str
    path: str
    line: int
    col: int
    held: tuple[str, ...]


@dataclass(frozen=True)
class LockEdge:
    """``held`` was held while ``acquired`` was acquired."""

    held: str
    acquired: str
    function: str
    path: str
    line: int
    col: int
    #: True when ``held`` arrived from a caller rather than this function.
    via_caller: bool


@dataclass
class _Function:
    """A project-qualified function with its defining file."""

    info: FunctionInfo
    index: FileIndex

    @property
    def qualified(self) -> str:
        return f"{self.index.module}.{self.info.qualname}"


class ProjectIndex:
    """All per-file indexes plus the derived whole-program graphs."""

    def __init__(self, files: "dict[str, FileIndex]", config: CheckConfig):
        self.files = files
        self.config = config
        #: module name -> defining file path.
        self.modules: "dict[str, str]" = {
            idx.module: path for path, idx in sorted(files.items())
        }
        self._functions: "dict[str, _Function] | None" = None
        self._import_edges: "list[ImportGraphEdge] | None" = None
        self._call_edges: "list[CallEdge] | None" = None
        self._lock_edges: "list[LockEdge] | None" = None

    # -- symbol tables -------------------------------------------------
    @property
    def functions(self) -> "dict[str, _Function]":
        """module-qualified name -> function, over every indexed file."""
        if self._functions is None:
            table: "dict[str, _Function]" = {}
            for _, idx in sorted(self.files.items()):
                for info in idx.functions:
                    table[f"{idx.module}.{info.qualname}"] = _Function(info, idx)
            self._functions = table
        return self._functions

    def classes_of(self, idx: FileIndex) -> "dict[str, str]":
        """Class name -> module-qualified name, for one file."""
        return {c.name: f"{idx.module}.{c.name}" for c in idx.classes}

    # -- import graph --------------------------------------------------
    @property
    def import_edges(self) -> "list[ImportGraphEdge]":
        """Module dependency edges (internal modules only as sources)."""
        if self._import_edges is None:
            edges: "list[ImportGraphEdge]" = []
            for path, idx in sorted(self.files.items()):
                seen: "set[tuple[str, int, bool]]" = set()
                for imp in idx.imports:
                    targets = [imp.module]
                    if imp.name is not None:
                        # ``from pkg import submodule`` binds a module.
                        dotted = f"{imp.module}.{imp.name}"
                        if dotted in self.modules:
                            targets.append(dotted)
                    for dst in targets:
                        if dst == idx.module:
                            continue
                        key = (dst, imp.line, imp.top_level)
                        if key in seen:
                            continue
                        seen.add(key)
                        edges.append(ImportGraphEdge(
                            src=idx.module, dst=dst, path=path,
                            line=imp.line, top_level=imp.top_level,
                        ))
            self._import_edges = edges
        return self._import_edges

    def import_cycles(self) -> "list[list[str]]":
        """Cycles among project modules along top-level import edges.

        A submodule's edge to its own ancestor package is skipped:
        ``from repro.core import packed`` inside ``repro.core.spec`` is
        satisfied from ``sys.modules`` while the package initializes --
        the idiomatic re-export pattern, not a hazard.  The dotted edge
        to the actual sibling (``repro.core.packed``) still counts.
        """
        adjacency: "dict[str, set[str]]" = {m: set() for m in self.modules}
        for edge in self.import_edges:
            if not edge.top_level or edge.dst not in adjacency:
                continue
            if edge.src == edge.dst or edge.src.startswith(edge.dst + "."):
                continue
            adjacency[edge.src].add(edge.dst)
        return [sorted(scc) for scc in _sccs(adjacency) if len(scc) > 1] + [
            [m] for m, deps in sorted(adjacency.items()) if m in deps
        ]

    # -- alias / call resolution ---------------------------------------
    def _alias_table(self, idx: FileIndex) -> "dict[str, str]":
        """Local binding name -> dotted project symbol or module."""
        table: "dict[str, str]" = {}
        for imp in idx.imports:
            if imp.name is None:
                table[imp.alias] = imp.module
            else:
                table[imp.alias] = f"{imp.module}.{imp.name}"
        return table

    def _resolve_symbol(self, idx: FileIndex, name: str) -> "str | None":
        """Module-local name -> qualified function/class, if defined here
        or bound by an import that lands on a project definition."""
        local = f"{idx.module}.{name}"
        if local in self.functions:
            return local
        if name in self.classes_of(idx):
            return local
        alias = self._alias_table(idx).get(name)
        if alias is None:
            return None
        if alias in self.functions:
            return alias
        # ``from m import C`` where C is a class defined in m.
        mod, _, terminal = alias.rpartition(".")
        target_path = self.modules.get(mod)
        if target_path is not None:
            target_idx = self.files[target_path]
            if terminal in self.classes_of(target_idx):
                return alias
        if alias in self.modules:
            return alias
        return None

    def _method_of(self, qual_cls: "str | None", method: str) -> "str | None":
        """``module.Class`` + method name -> qualified method, walking
        project-local base classes."""
        seen: "set[str]" = set()
        while qual_cls is not None and qual_cls not in seen:
            seen.add(qual_cls)
            candidate = f"{qual_cls}.{method}"
            if candidate in self.functions:
                return candidate
            mod, _, cls_name = qual_cls.rpartition(".")
            path = self.modules.get(mod)
            if path is None:
                return None
            idx = self.files[path]
            cls = next((c for c in idx.classes if c.name == cls_name), None)
            if cls is None or not cls.bases:
                return None
            qual_cls = self._resolve_symbol(idx, cls.bases[0].split(".")[-1])
        return None

    def resolve_call(
        self, idx: FileIndex, func: FunctionInfo, site: CallSite
    ) -> "str | None":
        """Resolve one call site to a qualified project function."""
        parts = site.callee.split(".")
        if len(parts) == 1:
            target = self._resolve_symbol(idx, parts[0])
            if target is None:
                return None
            if target in self.functions:
                return target
            # Constructor: ``C()`` runs ``C.__init__``.
            return self._method_of(target, "__init__")
        if parts[0] == "self" and func.cls is not None:
            qual_cls = f"{idx.module}.{func.cls}"
            if len(parts) == 2:
                return self._method_of(qual_cls, parts[1])
            if len(parts) == 3:
                # self.attr.method via a recorded constructor assignment.
                cls = next(
                    (c for c in idx.classes if c.name == func.cls), None
                )
                if cls is None:
                    return None
                ctor = cls.attr_types.get(parts[1])
                if ctor is None:
                    return None
                attr_cls = self._resolve_symbol(idx, ctor.split(".")[-1])
                if attr_cls is None:
                    return None
                return self._method_of(attr_cls, parts[2])
            return None
        if len(parts) == 2:
            base, method = parts
            # ``module_alias.func(...)``
            alias = self._alias_table(idx).get(base)
            if alias is not None and alias in self.modules:
                candidate = f"{alias}.{method}"
                if candidate in self.functions:
                    return candidate
                mod_idx = self.files[self.modules[alias]]
                if method in self.classes_of(mod_idx):
                    return self._method_of(candidate, "__init__")
                return None
            # ``ClassName.method(...)`` on a local or imported class.
            target = self._resolve_symbol(idx, base)
            if (
                target is not None
                and target not in self.functions
                and target not in self.modules
            ):
                return self._method_of(target, method)
        return None

    # -- call graph ----------------------------------------------------
    @property
    def call_edges(self) -> "list[CallEdge]":
        """Every resolved call edge in the project."""
        if self._call_edges is None:
            edges: "list[CallEdge]" = []
            for path, idx in sorted(self.files.items()):
                for info in idx.functions:
                    caller = f"{idx.module}.{info.qualname}"
                    for site in info.calls:
                        callee = self.resolve_call(idx, info, site)
                        if callee is None:
                            continue
                        edges.append(CallEdge(
                            caller=caller, callee=callee, path=path,
                            line=site.line, col=site.col, held=site.held,
                        ))
            self._call_edges = edges
        return self._call_edges

    # -- lock graph ----------------------------------------------------
    @property
    def lock_edges(self) -> "list[LockEdge]":
        """The held-while-acquiring relation, interprocedural."""
        if self._lock_edges is None:
            self._lock_edges = self._build_lock_edges()
        return self._lock_edges

    def _build_lock_edges(self) -> "list[LockEdge]":
        # Fixpoint: locks held at every call site flow into the callee's
        # entry set; monotone over finite lock sets, so it terminates.
        entry_held: "dict[str, set[str]]" = {}
        calls_into: "dict[str, list[CallEdge]]" = {}
        for edge in self.call_edges:
            calls_into.setdefault(edge.callee, []).append(edge)
        changed = True
        while changed:
            changed = False
            for callee, edges in calls_into.items():
                combined: "set[str]" = set()
                for edge in edges:
                    combined.update(edge.held)
                    combined.update(entry_held.get(edge.caller, ()))
                current = entry_held.setdefault(callee, set())
                if not combined <= current:
                    current |= combined
                    changed = True

        lock_edges: "list[LockEdge]" = []
        seen: "set[tuple[str, str, str]]" = set()
        for path, idx in sorted(self.files.items()):
            for info in idx.functions:
                qualified = f"{idx.module}.{info.qualname}"
                inherited = entry_held.get(qualified, set())
                for acq in info.acquires:
                    for held in sorted(set(acq.held) | inherited):
                        if held == acq.lock:
                            continue  # with A: with A: -- same token
                        key = (held, acq.lock, qualified)
                        if key in seen:
                            continue
                        seen.add(key)
                        lock_edges.append(LockEdge(
                            held=held, acquired=acq.lock,
                            function=qualified, path=path,
                            line=acq.line, col=acq.col,
                            via_caller=held not in acq.held,
                        ))
        return lock_edges

    def lock_cycles(self) -> "list[list[LockEdge]]":
        """Deadlock schedules: cycles in the held-while-acquiring graph.

        Returns one witness edge list per strongly-connected component,
        ordered lock-by-lock around the cycle.
        """
        adjacency: "dict[str, set[str]]" = {}
        by_pair: "dict[tuple[str, str], LockEdge]" = {}
        for edge in self.lock_edges:
            adjacency.setdefault(edge.held, set()).add(edge.acquired)
            adjacency.setdefault(edge.acquired, set())
            by_pair.setdefault((edge.held, edge.acquired), edge)
        cycles: "list[list[LockEdge]]" = []
        for scc in _sccs(adjacency):
            if len(scc) < 2:
                continue
            ordered = sorted(scc)
            witness: "list[LockEdge]" = []
            # Walk a cycle through the SCC: from each member, step to the
            # next member (any in-SCC successor) until back at the start.
            node = ordered[0]
            visited: "set[str]" = set()
            while node not in visited:
                visited.add(node)
                successor = min(
                    s for s in adjacency[node] if s in scc
                )
                witness.append(by_pair[(node, successor)])
                node = successor
            # The walk may carry a lead-in before it closes; trim to the
            # edge whose held lock is where the final acquisition lands.
            closing = witness[-1].acquired
            for i, edge in enumerate(witness):
                if edge.held == closing:
                    witness = witness[i:]
                    break
            cycles.append(witness)
        return cycles


@dataclass
class ProjectContext:
    """What a project-level rule receives: the index, the config, and
    lazy access to sources/ASTs for rules that need to re-analyze
    function bodies (the cross-mask taint pass)."""

    index: ProjectIndex
    config: CheckConfig
    get_source: "Callable[[str], str | None]"
    _trees: "dict[str, ast.Module]" = field(default_factory=dict)

    def get_tree(self, path: str) -> "ast.Module | None":
        if path in self._trees:
            return self._trees[path]
        source = self.get_source(path)
        if source is None:
            return None
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError:
            return None
        self._trees[path] = tree
        return tree


def build_project(
    sources: "Iterable[tuple[str, str]]",
    config: CheckConfig,
    cache: "IndexCache | None" = None,
    trees: "dict[str, ast.Module] | None" = None,
) -> ProjectContext:
    """Index ``(path, source)`` pairs into a :class:`ProjectContext`.

    ``trees`` supplies already-parsed ASTs (the runner has them from the
    per-file pass); missing entries are parsed here, consulting the
    ``cache`` first so unchanged files skip both parse and extraction.
    Files matching the config's global ``exclude`` fragments and files
    that fail to parse are left out of the index.
    """
    digest = config_digest(config.lock_names)
    files: "dict[str, FileIndex]" = {}
    source_map: "dict[str, str]" = {}
    tree_map: "dict[str, ast.Module]" = dict(trees or {})
    for path, source in sources:
        posix = path.replace("\\", "/")
        if any(fragment in posix for fragment in config.exclude):
            continue
        source_map[posix] = source
        key = IndexCache.key(source, digest)
        cached = cache.get(key) if cache is not None else None
        if cached is not None and cached.path == posix:
            files[posix] = cached
            continue
        tree = tree_map.get(posix) or tree_map.get(path)
        if tree is None:
            try:
                tree = ast.parse(source, filename=posix)
            except SyntaxError:
                continue
            tree_map[posix] = tree
        index = build_file_index(posix, tree, config.lock_names)
        files[posix] = index
        if cache is not None:
            cache.put(key, index)
    project = ProjectIndex(files, config)
    context = ProjectContext(
        index=project,
        config=config,
        get_source=lambda p: source_map.get(p),
    )
    context._trees.update(tree_map)
    return context


def _sccs(adjacency: "dict[str, set[str]]") -> "list[list[str]]":
    """Tarjan's strongly-connected components, iterative."""
    index_of: "dict[str, int]" = {}
    lowlink: "dict[str, int]" = {}
    on_stack: "set[str]" = set()
    stack: "list[str]" = []
    result: "list[list[str]]" = []
    counter = 0

    for root in sorted(adjacency):
        if root in index_of:
            continue
        work: "list[tuple[str, Iterable[str]]]" = [
            (root, iter(sorted(adjacency[root])))
        ]
        index_of[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in adjacency:
                    continue
                if succ not in index_of:
                    index_of[succ] = lowlink[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(adjacency[succ]))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component: "list[str]" = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                result.append(component)
    return result


__all__ = [
    "CallEdge",
    "ImportGraphEdge",
    "LockEdge",
    "ProjectContext",
    "ProjectIndex",
    "build_project",
]
