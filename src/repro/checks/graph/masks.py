"""Interprocedural mask64 taint: function summaries across call sites.

The per-file ``unmasked-op`` rule resets taint at every call boundary:
a call result is assumed clean, so ``passthrough(word) << 4`` slips
through even though ``passthrough`` hands the packed word straight
back.  This module closes that hole with *function summaries*:

* ``returns-masked?`` -- a function whose every return value flows
  through ``mask64``/``& MASK64`` (or never touches a packed word)
  produces clean results;
* otherwise the function **returns a word**: its results carry taint
  into the caller exactly like a word-named parameter would.

Summaries are computed to a fixpoint over the call graph (a function
returning ``g(word)`` is word-returning iff ``g`` is), then one final
taint pass runs with summaries enabled.  Findings already produced by
the intraprocedural rule are subtracted, so ``cross-unmasked-op`` only
reports violations that *need* the call boundary to be seen --
the two rules never double-report one site.

``requires-masked-args?`` is the dual summary: the parameters a callee
treats as packed words.  Unmasked growth in an argument expression is
already caught at the call site by the per-file rule, so it needs no
extra reporting here; the summary is exported for ``repro arch``
consumers instead.
"""

from __future__ import annotations

import ast
from dataclasses import replace
from typing import Callable, Iterator

from repro.checks.astutil import expr_text
from repro.checks.config import CheckConfig
from repro.checks.findings import Finding
from repro.checks.graph.index import CallSite, FileIndex, FunctionInfo
from repro.checks.graph.project import ProjectContext
from repro.checks.registry import FileContext, Rule
from repro.checks.rules.mask64 import _TaintEval

_Resolver = Callable[[ast.Call], "str | None"]


class _InterTaintEval(_TaintEval):
    """Taint evaluation with call summaries: a call to a word-returning
    function taints its result; everything else matches the base rule."""

    def __init__(
        self,
        rule: Rule,
        ctx: FileContext,
        summaries: "dict[str, bool]",
        resolve: _Resolver,
    ) -> None:
        super().__init__(rule, ctx)
        self.summaries = summaries
        self.resolve = resolve
        self.return_tainted = False

    def _eval_call(self, node: ast.Call) -> "tuple[bool, list]":
        func_name = None
        if isinstance(node.func, ast.Name):
            func_name = node.func.id
        elif isinstance(node.func, ast.Attribute):
            func_name = node.func.attr
        pending: "list[Finding]" = []
        for arg in node.args:
            pending += self.eval(arg)[1]
        for kw in node.keywords:
            pending += self.eval(kw.value)[1]
        if func_name in self.config.mask64_masking_calls:
            # mask64(...) truncates: absolve everything inside.
            return False, []
        callee = self.resolve(node)
        if callee is not None and self.summaries.get(callee, False):
            return True, pending
        return False, pending

    def _walk_stmt(self, stmt: ast.stmt, collect: bool) -> None:
        if isinstance(stmt, ast.Return):
            tainted, pending = self.eval(stmt.value)
            if tainted:
                self.return_tainted = True
            self._emit(pending, collect)
            return
        super()._walk_stmt(stmt, collect)


class _ScopedFunction:
    """One in-scope function body with its resolution context."""

    def __init__(
        self,
        node: "ast.FunctionDef | ast.AsyncFunctionDef",
        ctx: FileContext,
        index: FileIndex,
        info: FunctionInfo,
    ) -> None:
        self.node = node
        self.ctx = ctx
        self.index = index
        self.info = info
        self.qualified = f"{index.module}.{info.qualname}"

    def resolver(self, project: ProjectContext) -> _Resolver:
        def resolve(call: ast.Call) -> "str | None":
            callee = expr_text(call.func)
            if callee is None:
                return None
            site = CallSite(
                callee=callee, line=call.lineno, col=call.col_offset, held=()
            )
            return project.index.resolve_call(self.index, self.info, site)

        return resolve


def _scoped_functions(
    project: ProjectContext, config: CheckConfig
) -> "list[_ScopedFunction]":
    """Every analyzable function in the mask64 scope, with context."""
    result: "list[_ScopedFunction]" = []
    for path in sorted(project.index.files):
        if not config.in_scope(path, config.mask64_scope):
            continue
        tree = project.get_tree(path)
        source = project.get_source(path)
        if tree is None or source is None:
            continue
        index = project.index.files[path]
        ctx = FileContext(
            path=path, source=source, tree=tree, comments=[], config=config
        )
        info_by_line = {
            (info.name, info.line): info for info in index.functions
        }
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if any(
                node.name.endswith(suffix)
                for suffix in config.mask64_exempt_suffixes
            ):
                continue
            info = info_by_line.get((node.name, node.lineno))
            if info is None:
                continue  # nested def: not indexed, not summarized
            result.append(_ScopedFunction(node, ctx, index, info))
    return result


def compute_summaries(
    project: ProjectContext, rule: Rule
) -> "tuple[dict[str, bool], dict[str, tuple[str, ...]]]":
    """Fixpoint ``returns-word?`` plus ``requires-masked-args?`` tables."""
    config = project.config
    functions = _scoped_functions(project, config)
    summaries: "dict[str, bool]" = {f.qualified: False for f in functions}
    requires: "dict[str, tuple[str, ...]]" = {
        f.qualified: tuple(
            p for p in f.info.params if p in config.mask64_word_names
        )
        for f in functions
    }
    for _ in range(len(functions) + 1):
        changed = False
        for func in functions:
            evaluator = _InterTaintEval(
                rule, func.ctx, summaries, func.resolver(project)
            )
            evaluator.run_function(func.node)  # type: ignore[arg-type]
            if evaluator.return_tainted and not summaries[func.qualified]:
                summaries[func.qualified] = True
                changed = True
        if not changed:
            break
    return summaries, requires


def run_cross_mask(project: ProjectContext, rule: Rule) -> "Iterator[Finding]":
    """Findings that need the call boundary: interprocedural minus
    intraprocedural."""
    config = project.config
    functions = _scoped_functions(project, config)
    if not functions:
        return
    summaries, _ = compute_summaries(project, rule)
    no_summaries: "dict[str, bool]" = {}
    for func in functions:
        base = _InterTaintEval(
            rule, func.ctx, no_summaries, func.resolver(project)
        )
        base_findings = base.run_function(func.node)  # type: ignore[arg-type]
        base_sites = {(f.line, f.col) for f in base_findings}
        inter = _InterTaintEval(
            rule, func.ctx, summaries, func.resolver(project)
        )
        for finding in inter.run_function(func.node):  # type: ignore[arg-type]
            if (finding.line, finding.col) in base_sites:
                continue
            yield replace(
                finding,
                message=(
                    f"{finding.message} (packed-word taint crosses a call "
                    "boundary: a callee returns an unmasked word)"
                ),
            )


__all__ = ["compute_summaries", "run_cross_mask"]
