"""Declarative architecture spec: the layer DAG in ``[tool.repro.checks]``.

One spec replaces the two ad-hoc layering rules the checker used to
carry: each layer names the path fragments it owns, and ``arch-allow``
lists which *lower* layers its modules may import at module scope.
Lazy (function-scoped) imports are exempt from the DAG -- they are the
sanctioned pattern for upward references that must not exist at import
time (the CLI's lazy subcommand imports, perf suites driving the
daemon) -- but they still appear in ``repro arch`` output as soft
edges, and the protected-name rules (``engine-layering``,
``store-layering``) apply to them like everywhere else.

Config syntax (mirrored by the defaults in
:class:`~repro.checks.config.CheckConfig`)::

    [tool.repro.checks]
    arch-layers = [
        "core: repro/core/ repro/hashing/",
        "engines: repro/engines/",
    ]
    arch-allow = [
        "engines -> core",
    ]

A module matches the layer owning the longest fragment that appears in
its path; unmatched modules are unconstrained.  Malformed entries are
reported as findings by the ``layer-violation`` rule rather than
crashing the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.checks.config import CheckConfig


@dataclass(frozen=True)
class ArchSpec:
    """Parsed layer DAG plus the protected-name boundary data."""

    #: Layer name -> path fragments it owns.
    layers: "dict[str, tuple[str, ...]]" = field(default_factory=dict)
    #: Layer name -> layers its modules may import at module scope
    #: (its own layer is always allowed).
    allow: "dict[str, tuple[str, ...]]" = field(default_factory=dict)
    #: Entries that failed to parse, as human-readable messages.
    problems: tuple[str, ...] = ()

    @staticmethod
    def from_config(config: CheckConfig) -> "ArchSpec":
        layers: "dict[str, tuple[str, ...]]" = {}
        allow: "dict[str, tuple[str, ...]]" = {}
        problems: "list[str]" = []
        for entry in config.arch_layers:
            name, sep, rest = entry.partition(":")
            name = name.strip()
            fragments = tuple(rest.split())
            if not sep or not name or not fragments:
                problems.append(
                    f"malformed arch-layers entry {entry!r}: "
                    "expected 'name: fragment [fragment ...]'"
                )
                continue
            if name in layers:
                problems.append(f"duplicate arch-layers entry {name!r}")
                continue
            layers[name] = fragments
        for entry in config.arch_allow:
            name, sep, rest = entry.partition("->")
            name = name.strip()
            deps = tuple(rest.split())
            if not sep or not name:
                problems.append(
                    f"malformed arch-allow entry {entry!r}: "
                    "expected 'layer -> dep [dep ...]'"
                )
                continue
            unknown = [d for d in (name, *deps) if d not in layers]
            if unknown:
                problems.append(
                    f"arch-allow entry {entry!r} names unknown "
                    f"layer(s): {', '.join(unknown)}"
                )
                continue
            allow[name] = deps
        return ArchSpec(
            layers=layers, allow=allow, problems=tuple(problems)
        )

    def layer_of(self, path: str) -> "str | None":
        """The layer owning ``path`` (longest matching fragment wins)."""
        best: "str | None" = None
        best_len = 0
        for name, fragments in self.layers.items():
            for fragment in fragments:
                if fragment in path and len(fragment) > best_len:
                    best = name
                    best_len = len(fragment)
        return best

    def edge_allowed(self, src_layer: str, dst_layer: str) -> bool:
        """True when modules of ``src_layer`` may import ``dst_layer``."""
        if src_layer == dst_layer:
            return True
        return dst_layer in self.allow.get(src_layer, ())


__all__ = ["ArchSpec"]
