"""Content-hash-keyed cache of per-file symbol indexes.

The whole-program pass must stay cheap on warm runs: the index of a
file is a pure function of its bytes (plus the extraction version and
the config knobs that steer extraction), so it is cached as one small
JSON file named by ``sha256(source) ⊕ INDEX_VERSION ⊕ config digest``.
Any edit to the file, any bump of :data:`~repro.checks.graph.index
.INDEX_VERSION`, and any change to the lock-name config therefore
misses cleanly -- no invalidation protocol, no staleness.

Writes are atomic (tmp + replace) so concurrent runs never observe a
torn entry; unreadable or corrupt entries are treated as misses.  The
cache directory is chosen by ``repro check --cache-dir`` or the
``REPRO_CHECKS_CACHE`` environment variable (CI points it at a
restored directory keyed on the source hash).
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from repro.checks.graph.index import INDEX_VERSION, FileIndex

#: Environment variable naming the default cache directory.
CACHE_ENV = "REPRO_CHECKS_CACHE"


def default_cache_dir() -> "Path | None":
    """The ``REPRO_CHECKS_CACHE`` directory, or None (cache disabled)."""
    value = os.environ.get(CACHE_ENV, "").strip()
    return Path(value) if value else None


class IndexCache:
    """Per-file :class:`FileIndex` store keyed on content hash."""

    def __init__(self, directory: "Path | str") -> None:
        self.directory = Path(directory)
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key(source: str, config_digest: str) -> str:
        """Cache key for one file's source under one config digest."""
        h = hashlib.sha256()
        h.update(f"v{INDEX_VERSION}|{config_digest}|".encode())
        h.update(source.encode("utf-8", errors="surrogatepass"))
        return h.hexdigest()

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def get(self, key: str) -> "FileIndex | None":
        """The cached index for ``key``, or None on miss/corruption."""
        try:
            data = json.loads(self._path(key).read_text(encoding="utf-8"))
            result = FileIndex.from_json(data)
        except (OSError, ValueError, KeyError, TypeError, AttributeError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, index: FileIndex) -> None:
        """Store ``index`` under ``key`` (atomic, best-effort)."""
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            target = self._path(key)
            tmp = target.with_suffix(f".tmp{os.getpid()}")
            tmp.write_text(
                json.dumps(index.to_json(), sort_keys=True), encoding="utf-8"
            )
            tmp.replace(target)
        except OSError:
            pass  # a cold cache next run, not a failure now


def config_digest(lock_names: tuple[str, ...]) -> str:
    """Digest of the config knobs that steer index extraction."""
    h = hashlib.sha256()
    h.update("|".join(lock_names).encode("utf-8"))
    return h.hexdigest()[:16]


__all__ = ["CACHE_ENV", "IndexCache", "config_digest", "default_cache_dir"]
