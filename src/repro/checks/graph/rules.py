"""Whole-program rules: deadlock cycles, cross-module taint, layer DAG.

These are :class:`~repro.checks.registry.ProjectRule` subclasses -- they
register like any rule (so ``--select``, suppressions and ``--list-rules``
treat them uniformly) but only produce findings under
``repro check --graph``, when the runner has built a
:class:`~repro.checks.graph.project.ProjectContext`.
"""

from __future__ import annotations

from typing import Iterator

from repro.checks.findings import Finding, Severity
from repro.checks.graph.archspec import ArchSpec
from repro.checks.graph.masks import run_cross_mask
from repro.checks.graph.project import LockEdge, ProjectContext
from repro.checks.registry import ProjectRule, register


def _finding(
    rule: ProjectRule,
    path: str,
    line: int,
    col: int,
    message: str,
    severity: Severity = Severity.ERROR,
) -> Finding:
    return Finding(
        path=path,
        line=line,
        col=col,
        rule_id=rule.id,
        family=rule.family,
        message=message,
        severity=severity,
    )


def _schedule(cycle: "list[LockEdge]") -> str:
    """Render a deadlock cycle as a hold-then-acquire schedule."""
    steps = []
    for edge in cycle:
        where = f"{edge.function} ({edge.path}:{edge.line})"
        via = " via caller" if edge.via_caller else ""
        steps.append(
            f"holds {edge.held}{via}, acquires {edge.acquired} in {where}"
        )
    return "; ".join(steps)


@register
class LockOrderCycleRule(ProjectRule):
    """Cycles in the held-while-acquiring relation are deadlock schedules."""

    id = "lock-order-cycle"
    family = "lock-discipline"
    description = (
        "two or more locks are acquired in conflicting orders across the "
        "call graph: concurrent threads can deadlock (requires --graph)"
    )
    scope_field = "lock_scope"

    def check_project(self, project: ProjectContext) -> "Iterator[Finding]":
        config = project.config
        for cycle in project.index.lock_cycles():
            anchor = next(
                (
                    edge for edge in cycle
                    if config.in_scope(edge.path, config.lock_scope)
                ),
                None,
            )
            if anchor is None:
                continue  # every participant is outside the lock scope
            locks = " -> ".join(
                [edge.held for edge in cycle] + [cycle[0].held]
            )
            yield _finding(
                self, anchor.path, anchor.line, anchor.col,
                f"lock-order cycle {locks}: {_schedule(cycle)}; impose a "
                "single acquisition order or collapse to one lock",
            )


@register
class CrossUnmaskedOpRule(ProjectRule):
    """Packed-word taint that only a call-boundary view can see."""

    id = "cross-unmasked-op"
    family = "mask64"
    description = (
        "unmasked growth arithmetic on a packed word returned by another "
        "function; found via interprocedural summaries (requires --graph)"
    )
    scope_field = "mask64_scope"

    def check_project(self, project: ProjectContext) -> "Iterator[Finding]":
        for finding in run_cross_mask(project, self):
            yield Finding(
                path=finding.path,
                line=finding.line,
                col=finding.col,
                rule_id=self.id,
                family=self.family,
                message=finding.message,
                severity=finding.severity,
            )


@register
class LayerViolationRule(ProjectRule):
    """Module-scope imports must follow the declared layer DAG."""

    id = "layer-violation"
    family = "layering"
    description = (
        "top-level import crosses the layer DAG declared in "
        "[tool.repro.checks] arch-layers/arch-allow, or modules form an "
        "import cycle (requires --graph)"
    )
    scope_field = None

    def check_project(self, project: ProjectContext) -> "Iterator[Finding]":
        spec = ArchSpec.from_config(project.config)
        for problem in spec.problems:
            yield _finding(
                self, "pyproject.toml", 1, 0, problem,
                severity=Severity.WARNING,
            )
        index = project.index
        for edge in index.import_edges:
            if not edge.top_level:
                continue  # lazy imports are the sanctioned upward pattern
            dst_path = index.modules.get(edge.dst)
            if dst_path is None:
                continue  # external dependency: out of the DAG's remit
            src_layer = spec.layer_of(edge.path)
            dst_layer = spec.layer_of(dst_path)
            if src_layer is None or dst_layer is None:
                continue
            if spec.edge_allowed(src_layer, dst_layer):
                continue
            yield _finding(
                self, edge.path, edge.line, 0,
                f"layer violation: {src_layer} module {edge.src} imports "
                f"{dst_layer} module {edge.dst} at module scope; allowed "
                f"dependencies of {src_layer} are: "
                f"{', '.join(spec.allow.get(src_layer, ())) or '(none)'}. "
                "Use a function-scoped import if the reference is "
                "genuinely lazy, or extend arch-allow",
            )
        for cycle in index.import_cycles():
            anchor_path = index.modules.get(cycle[0])
            if anchor_path is None:  # pragma: no cover - modules are indexed
                continue
            yield _finding(
                self, anchor_path, 1, 0,
                "import cycle among project modules: "
                + " -> ".join(cycle + [cycle[0]])
                + "; break it with a lazy import or an interface module",
            )


__all__ = [
    "CrossUnmaskedOpRule",
    "LayerViolationRule",
    "LockOrderCycleRule",
]
