"""Emitters for ``repro arch``: import/lock graphs as DOT or JSON.

The JSON form is versioned and stable (sorted keys, deterministic edge
order) so CI diffs and downstream tooling can rely on it; the DOT form
is for humans (``dot -Tsvg``).  Lazy import edges render dashed --
they are exempt from the layer DAG but still worth seeing.
"""

from __future__ import annotations

import json

from repro.checks.graph.archspec import ArchSpec
from repro.checks.graph.project import ProjectIndex

#: Bumped when the JSON shape changes.
EMIT_VERSION = 1


def _dot_escape(name: str) -> str:
    return '"' + name.replace('"', '\\"') + '"'


def import_graph_json(index: ProjectIndex) -> str:
    """The module import graph (internal edges only) as stable JSON."""
    spec = ArchSpec.from_config(index.config)
    edges = sorted(
        (
            {
                "src": e.src,
                "dst": e.dst,
                "top_level": e.top_level,
                "path": e.path,
                "line": e.line,
            }
            for e in index.import_edges
            if e.dst in index.modules
        ),
        key=lambda d: (d["src"], d["dst"], d["line"]),
    )
    modules = {
        module: {"path": path, "layer": spec.layer_of(path)}
        for module, path in sorted(index.modules.items())
    }
    return json.dumps(
        {
            "version": EMIT_VERSION,
            "graph": "imports",
            "modules": modules,
            "edges": edges,
            "cycles": index.import_cycles(),
        },
        indent=2,
        sort_keys=True,
    )


def import_graph_dot(index: ProjectIndex) -> str:
    """The module import graph as DOT, clustered by layer."""
    spec = ArchSpec.from_config(index.config)
    by_layer: "dict[str, list[str]]" = {}
    for module, path in sorted(index.modules.items()):
        layer = spec.layer_of(path) or "(unlayered)"
        by_layer.setdefault(layer, []).append(module)
    lines = ["digraph imports {", "  rankdir=BT;", "  node [shape=box];"]
    for number, (layer, modules) in enumerate(sorted(by_layer.items())):
        lines.append(f"  subgraph cluster_{number} {{")
        lines.append(f"    label={_dot_escape(layer)};")
        for module in modules:
            lines.append(f"    {_dot_escape(module)};")
        lines.append("  }")
    seen: "set[tuple[str, str, bool]]" = set()
    for edge in index.import_edges:
        if edge.dst not in index.modules:
            continue
        key = (edge.src, edge.dst, edge.top_level)
        if key in seen:
            continue
        seen.add(key)
        style = "" if edge.top_level else " [style=dashed]"
        lines.append(
            f"  {_dot_escape(edge.src)} -> {_dot_escape(edge.dst)}{style};"
        )
    lines.append("}")
    return "\n".join(lines) + "\n"


def lock_graph_json(index: ProjectIndex) -> str:
    """The held-while-acquiring graph as stable JSON."""
    edges = sorted(
        (
            {
                "held": e.held,
                "acquired": e.acquired,
                "function": e.function,
                "path": e.path,
                "line": e.line,
                "via_caller": e.via_caller,
            }
            for e in index.lock_edges
        ),
        key=lambda d: (d["held"], d["acquired"], d["function"]),
    )
    cycles = [
        [
            {
                "held": e.held,
                "acquired": e.acquired,
                "function": e.function,
                "path": e.path,
                "line": e.line,
            }
            for e in cycle
        ]
        for cycle in index.lock_cycles()
    ]
    return json.dumps(
        {
            "version": EMIT_VERSION,
            "graph": "locks",
            "edges": edges,
            "cycles": cycles,
        },
        indent=2,
        sort_keys=True,
    )


def lock_graph_dot(index: ProjectIndex) -> str:
    """The held-while-acquiring graph as DOT; cycle edges render red."""
    in_cycle: "set[tuple[str, str]]" = {
        (e.held, e.acquired)
        for cycle in index.lock_cycles()
        for e in cycle
    }
    lines = ["digraph locks {", "  node [shape=ellipse];"]
    seen: "set[tuple[str, str]]" = set()
    for edge in sorted(
        index.lock_edges, key=lambda e: (e.held, e.acquired)
    ):
        key = (edge.held, edge.acquired)
        if key in seen:
            continue
        seen.add(key)
        attrs = []
        if key in in_cycle:
            attrs.append("color=red")
            attrs.append("penwidth=2")
        if edge.via_caller:
            attrs.append("style=dashed")
        suffix = f" [{', '.join(attrs)}]" if attrs else ""
        lines.append(
            f"  {_dot_escape(edge.held)} -> "
            f"{_dot_escape(edge.acquired)}{suffix};"
        )
    lines.append("}")
    return "\n".join(lines) + "\n"


__all__ = [
    "EMIT_VERSION",
    "import_graph_dot",
    "import_graph_json",
    "lock_graph_dot",
    "lock_graph_json",
]
