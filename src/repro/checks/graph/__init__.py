"""Whole-program analysis layer for :mod:`repro.checks`.

Per-file rules see one AST at a time; the invariants they guard are
whole-program facts.  This package parses the tree once into a symbol
index (:mod:`~repro.checks.graph.index`), caches it per file keyed on
content hash (:mod:`~repro.checks.graph.cache`), and derives three
artifacts (:mod:`~repro.checks.graph.project`):

* the **import graph** -- module-level dependency edges, split into
  top-level (import-time) and lazy (function-scoped) edges;
* the **call graph** -- direct calls, ``self.method`` resolution within
  a class, and ``self.attr.method`` resolution through constructor
  assignments recorded in the index;
* the **lock-acquisition graph** -- which locks are held at each call
  site, propagated interprocedurally along the call graph into a
  held-while-acquiring relation.

Three rule families run on top (:mod:`~repro.checks.graph.rules`):
``lock-order-cycle`` (a real deadlock detector), ``cross-unmasked-op``
(mask64 taint that survives call boundaries via function summaries),
and ``layer-violation`` (the declarative architecture DAG in
``[tool.repro.checks]``, which also rejects import cycles).

Entry points: ``repro check --graph`` and ``repro arch``.
"""

from __future__ import annotations

from repro.checks.graph.cache import IndexCache
from repro.checks.graph.index import INDEX_VERSION, FileIndex, build_file_index
from repro.checks.graph.project import ProjectContext, ProjectIndex, build_project

__all__ = [
    "INDEX_VERSION",
    "FileIndex",
    "IndexCache",
    "ProjectContext",
    "ProjectIndex",
    "build_file_index",
    "build_project",
]
