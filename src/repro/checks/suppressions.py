"""Inline suppression comments: ``# repro: allow[rule-id] reason``.

A suppression names one or more rule ids (or families, or ``all``) and
*must* give a reason -- a reasonless suppression is itself reported as a
``bad-suppression`` finding, so every silenced diagnostic documents why
it is safe.  Placement:

* a trailing comment suppresses findings on its own line;
* a comment alone on a line suppresses the *statement* that follows --
  the whole statement, through decorator lines and parenthesized
  continuations, not just the next physical line.  For compound
  statements (``def``, ``if``, ``with``, ...) coverage stops at the end
  of the header: the body keeps its own discipline.

Multiple ids are comma-separated: ``# repro: allow[mask64,api-misuse] why``.
"""

from __future__ import annotations

import ast
import bisect
import io
import re
import tokenize
from dataclasses import dataclass

from repro.checks.findings import Finding, Severity

_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<ids>[A-Za-z0-9_,\-\s]*)\]\s*(?P<reason>.*)"
)

_COMPOUND = (
    ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
    ast.If, ast.For, ast.AsyncFor, ast.While, ast.With, ast.AsyncWith,
    ast.Try, ast.Match,
)


@dataclass(frozen=True)
class Suppression:
    """One parsed ``allow`` comment."""

    line: int
    col: int
    rule_ids: tuple[str, ...]
    reason: str
    #: First line whose findings this suppression covers.
    target_line: int
    #: Last covered line (inclusive); equals ``target_line`` for
    #: trailing comments, spans the anchored statement otherwise.
    target_end: int

    def covers(self, finding: Finding) -> bool:
        if not self.target_line <= finding.line <= self.target_end:
            return False
        return (
            "all" in self.rule_ids
            or finding.rule_id in self.rule_ids
            or finding.family in self.rule_ids
        )


def _statement_spans(tree: ast.Module) -> "list[tuple[int, int]]":
    """``(start, end)`` line spans for every statement, sorted by start.

    ``start`` includes decorator lines; ``end`` is the header end for
    compound statements (the line before the first body statement) and
    the full extent for simple ones.
    """
    spans: "list[tuple[int, int]]" = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        start = node.lineno
        for decorator in getattr(node, "decorator_list", []):
            start = min(start, decorator.lineno)
        if isinstance(node, _COMPOUND):
            body = getattr(node, "body", [])
            if body and body[0].lineno > node.lineno:
                end = body[0].lineno - 1
            else:
                end = node.lineno  # one-liner: ``if x: y``
        else:
            end = getattr(node, "end_lineno", None) or node.lineno
        spans.append((start, end))
    spans.sort()
    return spans


def extract_comments(source: str) -> list[tuple[int, int, str]]:
    """All comment tokens as ``(line, col, text)``; tolerant of files
    that fail tokenization midway (returns what was seen)."""
    comments: list[tuple[int, int, str]] = []
    reader = io.StringIO(source).readline
    try:
        for tok in tokenize.generate_tokens(reader):
            if tok.type == tokenize.COMMENT:
                comments.append((tok.start[0], tok.start[1], tok.string))
    except (tokenize.TokenizeError, IndentationError, SyntaxError):
        pass
    return comments


def parse_suppressions(
    source: str,
    comments: "list[tuple[int, int, str]] | None" = None,
    path: str = "<string>",
    tree: "ast.Module | None" = None,
) -> tuple[list[Suppression], list[Finding]]:
    """Parse ``allow`` comments; returns ``(suppressions, problems)``.

    ``problems`` holds ``bad-suppression`` findings for comments with an
    empty id list or a missing reason.  With ``tree``, standalone
    comments anchor to the whole following statement; without it they
    fall back to covering only the next physical line.
    """
    if comments is None:
        comments = extract_comments(source)
    lines = source.splitlines()
    spans = _statement_spans(tree) if tree is not None else []
    starts = [span[0] for span in spans]
    suppressions: list[Suppression] = []
    problems: list[Finding] = []
    for line, col, text in comments:
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        ids = tuple(
            part.strip() for part in match.group("ids").split(",")
            if part.strip()
        )
        reason = match.group("reason").strip()
        standalone = (
            line - 1 < len(lines) and lines[line - 1].lstrip().startswith("#")
        )
        if standalone:
            target, target_end = line + 1, line + 1
            at = bisect.bisect_right(starts, line)
            if at < len(spans):
                target, target_end = spans[at]
        else:
            target = target_end = line
        if not ids:
            problems.append(Finding(
                path=path, line=line, col=col,
                rule_id="bad-suppression", family="checks",
                message="suppression lists no rule ids: use allow[rule-id]",
                severity=Severity.ERROR,
            ))
            continue
        if not reason:
            problems.append(Finding(
                path=path, line=line, col=col,
                rule_id="bad-suppression", family="checks",
                message=(
                    f"suppression allow[{','.join(ids)}] has no reason; "
                    "every suppression must say why it is safe"
                ),
                severity=Severity.ERROR,
            ))
            continue
        suppressions.append(Suppression(
            line=line, col=col, rule_ids=ids, reason=reason,
            target_line=target, target_end=target_end,
        ))
    return suppressions, problems


def apply_suppressions(
    findings: list[Finding], suppressions: list[Suppression]
) -> tuple[list[Finding], list[Finding]]:
    """Split findings into ``(kept, suppressed)``."""
    kept: list[Finding] = []
    suppressed: list[Finding] = []
    for finding in findings:
        if any(s.covers(finding) for s in suppressions):
            suppressed.append(finding)
        else:
            kept.append(finding)
    return kept, suppressed


__all__ = [
    "Suppression",
    "apply_suppressions",
    "extract_comments",
    "parse_suppressions",
]
