"""Small AST helpers shared by per-file rules and the graph layer."""

from __future__ import annotations

import ast


def expr_text(node: ast.expr) -> "str | None":
    """Dotted text of a Name/Attribute chain (``self._lock``), else None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = expr_text(node.value)
        return f"{base}.{node.attr}" if base else None
    return None


def call_root(node: ast.AST) -> "str | None":
    """The leftmost ``Name`` id of an attribute chain, or None."""
    while isinstance(node, ast.Attribute):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def is_lock_expr(node: ast.expr, lock_names: tuple[str, ...]) -> bool:
    """True when a ``with`` context expression looks like a lock."""
    text = expr_text(node)
    if text is None:
        return False
    terminal = text.rsplit(".", 1)[-1].lower()
    return any(fragment in terminal for fragment in lock_names)


__all__ = ["call_root", "expr_text", "is_lock_expr"]
