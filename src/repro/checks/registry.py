"""Rule registry: declarative registration and lookup of check rules.

A rule is a class with ``id``, ``family``, ``description``, an optional
``scope_field`` naming the :class:`~repro.checks.config.CheckConfig`
attribute that scopes it, and a ``check(ctx)`` method yielding
:class:`~repro.checks.findings.Finding` objects.  Registration is a
decorator so adding a rule is one import away::

    @register
    class MyRule(Rule):
        id = "my-rule"
        family = "api-misuse"
        description = "..."

        def check(self, ctx):
            ...
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.checks.config import CheckConfig
from repro.checks.findings import Finding, Severity


@dataclass
class FileContext:
    """Everything a rule needs to inspect one source file."""

    path: str
    source: str
    tree: ast.Module
    #: ``(line, col, text)`` for every comment token in the file.
    comments: list = field(default_factory=list)
    config: CheckConfig = field(default_factory=CheckConfig)

    def finding(
        self,
        rule: "Rule",
        node: "ast.AST | tuple[int, int]",
        message: str,
        severity: Severity = Severity.ERROR,
    ) -> Finding:
        """Build a finding anchored at an AST node or ``(line, col)``."""
        if isinstance(node, tuple):
            line, col = node
        else:
            line = getattr(node, "lineno", 1)
            col = getattr(node, "col_offset", 0)
        return Finding(
            path=self.path,
            line=line,
            col=col,
            rule_id=rule.id,
            family=rule.family,
            message=message,
            severity=severity,
        )


class Rule:
    """Base class for check rules; subclass and :func:`register`."""

    #: Stable identifier used in suppressions and ``--select``.
    id: str = ""
    #: Family grouping (mask64, lock-discipline, determinism, ...).
    family: str = ""
    #: One-line human description shown by ``repro check --list-rules``.
    description: str = ""
    #: Name of the CheckConfig attribute holding this rule's path scope,
    #: or None to run on every file.
    scope_field: "str | None" = None
    #: True for whole-program rules (run once per project under
    #: ``--graph``, not once per file).
    project: bool = False

    def applies_to(self, path: str, config: CheckConfig) -> bool:
        """True when the rule should run on ``path``."""
        override = config.scopes.get(self.id)
        if override is not None:
            return config.in_scope(path, tuple(override))
        if self.scope_field is None:
            return config.in_scope(path, ())
        return config.in_scope(path, getattr(config, self.scope_field))

    def check(self, ctx: FileContext):
        """Yield findings for one file; overridden by subclasses."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<Rule {self.id} ({self.family})>"


class ProjectRule(Rule):
    """Base class for whole-program rules.

    Project rules never run in the per-file loop (:meth:`check` yields
    nothing); under ``repro check --graph`` the runner builds one
    :class:`~repro.checks.graph.project.ProjectContext` and calls
    :meth:`check_project` once.  Findings are still anchored at file
    locations, so inline suppressions and per-rule scopes apply
    normally.
    """

    project = True

    def check(self, ctx: FileContext):
        return iter(())

    def check_project(self, project):
        """Yield findings for the whole project; overridden."""
        raise NotImplementedError


_REGISTRY: "dict[str, Rule]" = {}


def register(rule_cls):
    """Class decorator: instantiate and register a rule by its id."""
    rule = rule_cls()
    if not rule.id or not rule.family:
        raise ValueError(f"rule {rule_cls.__name__} must define id and family")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id: {rule.id}")
    _REGISTRY[rule.id] = rule
    return rule_cls


def all_rules() -> list[Rule]:
    """Every registered rule, sorted by id (import side effect loads
    the built-in rule modules)."""
    import repro.checks.rules  # noqa: F401  (registers built-ins)

    return [rule for _, rule in sorted(_REGISTRY.items())]


def get_rule(rule_id: str) -> "Rule | None":
    """Look up one rule by id (None when unknown)."""
    import repro.checks.rules  # noqa: F401

    return _REGISTRY.get(rule_id)


def select_rules(select: "tuple[str, ...] | list[str] | None") -> list[Rule]:
    """Rules matching ``select`` entries (ids or family names); all rules
    when ``select`` is falsy.  Unknown entries raise ``ValueError``."""
    rules = all_rules()
    if not select:
        return rules
    wanted = set(select)
    known = {r.id for r in rules} | {r.family for r in rules}
    unknown = wanted - known
    if unknown:
        raise ValueError(
            f"unknown rule or family: {', '.join(sorted(unknown))}"
        )
    return [r for r in rules if r.id in wanted or r.family in wanted]


__all__ = [
    "FileContext",
    "ProjectRule",
    "Rule",
    "all_rules",
    "get_rule",
    "register",
    "select_rules",
]
