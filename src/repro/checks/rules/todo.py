"""todo-tracking: work markers must carry a tracking reference.

An anonymous ``# TODO: later`` comment rots; one that names an owner or
issue (``# TODO(roadmap-bfs22): ...``) can be swept mechanically.  This
rule requires every configured marker (``TODO``/``FIXME``/``XXX``) in a
comment to be immediately followed by a parenthesized reference.
"""

from __future__ import annotations

import re

from repro.checks.registry import FileContext, Rule, register


@register
class TodoTrackingRule(Rule):
    """Untracked TODO/FIXME/XXX comments."""

    id = "untracked-todo"
    family = "todo-tracking"
    description = (
        "TODO/FIXME/XXX comments must carry a parenthesized tracking "
        "reference, e.g. TODO(roadmap-depth): ..."
    )
    scope_field = None

    def check(self, ctx: FileContext):
        markers = ctx.config.todo_markers
        if not markers:
            return
        pattern = re.compile(
            r"\b(?P<marker>" + "|".join(re.escape(m) for m in markers) + r")\b"
            r"(?P<ref>\([^)]+\))?"
        )
        for line, col, text in ctx.comments:
            for match in pattern.finditer(text):
                if match.group("ref") is None:
                    yield ctx.finding(
                        self, (line, col + match.start()),
                        f"untracked {match.group('marker')} comment; add a "
                        f"reference: {match.group('marker')}(<owner-or-"
                        "issue>): ...",
                    )


__all__ = ["TodoTrackingRule"]
