"""mask64: 64-bit mask discipline on packed-word arithmetic.

The paper's Section 3.3 routines (``composition``, ``inverse``,
``conjugate01``) and Table 2's ``hash64shift`` are written against C's
``unsigned long long``: every intermediate silently wraps modulo 2**64.
Python integers do not wrap, so any ``<<``, ``+``, ``*`` or ``~`` whose
result is not explicitly truncated can grow past 64 bits and corrupt a
packed permutation (or, for ``~``, go negative) without raising.

This rule runs a small intraprocedural taint analysis:

* taint sources are parameters (and ``self.<attr>`` reads) whose names
  are configured packed-word names (``word``, ``p``, ``q``, ``key``, ...);
* taint propagates through arithmetic and assignments;
* ``value & <mask constant>`` and ``mask64(value)`` clear taint -- and
  also absolve any growth operators *inside* the masked expression,
  because the mask truncates whatever they produced;
* an unmasked ``<<``/``+``/``*``/``**``/``~`` on a tainted operand is
  reported.

Functions whose names end in a configured suffix (default ``_np``) are
exempt: numpy ``uint64`` arithmetic wraps in hardware exactly like C.
"""

from __future__ import annotations

import ast

from repro.checks.registry import FileContext, Rule, register

#: Operators whose result can exceed 64 bits on unbounded ints.
_GROWTH_BINOPS = (ast.LShift, ast.Add, ast.Mult, ast.Pow)

_OP_NAMES = {
    ast.LShift: "<<",
    ast.Add: "+",
    ast.Mult: "*",
    ast.Pow: "**",
}


def _is_mask_operand(node: ast.expr, mask_names: tuple[str, ...]) -> bool:
    """True when ``node`` is a constant (or named mask) that truncates."""
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return 0 <= node.value < (1 << 64)
    name = None
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    if name is None:
        return False
    return any(
        name == mask or name.endswith("_" + mask.lower()) or name == mask.lower()
        for mask in mask_names
    ) or "mask" in name.lower()


class _TaintEval:
    """Bottom-up expression evaluation: (is_tainted, pending findings)."""

    def __init__(self, rule: "Mask64Rule", ctx: FileContext):
        self.rule = rule
        self.ctx = ctx
        self.config = ctx.config
        self.tainted: set[str] = set()
        self.findings: list = []

    # -- expression evaluation -----------------------------------------
    def eval(self, node: "ast.expr | None") -> tuple[bool, list]:
        """Return (tainted, pending) for an expression subtree.

        ``pending`` findings are violations that a *enclosing* mask can
        still absolve; once evaluation reaches statement level they are
        final.
        """
        if node is None:
            return False, []
        if isinstance(node, ast.Name):
            return node.id in self.tainted, []
        if isinstance(node, ast.Attribute):
            tainted = node.attr in self.config.mask64_word_names
            _, pending = self.eval(node.value)
            return tainted, pending
        if isinstance(node, ast.Constant):
            return False, []
        if isinstance(node, ast.BinOp):
            return self._eval_binop(node)
        if isinstance(node, ast.UnaryOp):
            tainted, pending = self.eval(node.operand)
            if isinstance(node.op, ast.Invert) and tainted:
                pending = pending + [self.ctx.finding(
                    self.rule, node,
                    "unmasked ~ on a packed-word value: Python ~ yields a "
                    "negative int, not a 64-bit complement; wrap in mask64() "
                    "or add & MASK64",
                )]
            return tainted, pending
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.IfExp):
            t_body, p_body = self.eval(node.body)
            t_else, p_else = self.eval(node.orelse)
            _, p_test = self.eval(node.test)
            return t_body or t_else, p_body + p_else + p_test
        if isinstance(node, ast.Compare):
            pending = self.eval(node.left)[1]
            for comparator in node.comparators:
                pending += self.eval(comparator)[1]
            return False, pending
        if isinstance(node, ast.BoolOp):
            tainted = False
            pending: list = []
            for value in node.values:
                t, p = self.eval(value)
                tainted = tainted or t
                pending += p
            return tainted, pending
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            pending = []
            for elt in node.elts:
                pending += self.eval(elt)[1]
            return False, pending
        if isinstance(node, ast.Subscript):
            _, p_value = self.eval(node.value)
            _, p_slice = self.eval(node.slice)
            return False, p_value + p_slice
        if isinstance(node, ast.Starred):
            return self.eval(node.value)
        # Comprehensions, lambdas, f-strings, ...: walk children for
        # nested dangerous ops but treat the result as clean.
        pending = []
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                pending += self.eval(child)[1]
        return False, pending

    def _eval_binop(self, node: ast.BinOp) -> tuple[bool, list]:
        left_t, left_p = self.eval(node.left)
        right_t, right_p = self.eval(node.right)
        pending = left_p + right_p
        tainted = left_t or right_t
        if isinstance(node.op, ast.BitAnd):
            # value & MASK truncates: the result is clean and any growth
            # inside the masked expression is absolved.
            if _is_mask_operand(node.right, self.config.mask64_mask_names) or \
                    _is_mask_operand(node.left, self.config.mask64_mask_names):
                return False, []
            # ANDing with an unknown value cannot *grow* the word, but
            # the result is still word-derived.
            return tainted, pending
        if isinstance(node.op, _GROWTH_BINOPS) and tainted:
            op = _OP_NAMES[type(node.op)]
            pending = pending + [self.ctx.finding(
                self.rule, node,
                f"unmasked {op} on a packed-word value can exceed 64 bits; "
                "route the result through mask64() or & MASK64",
            )]
        if isinstance(node.op, (ast.RShift, ast.FloorDiv, ast.Mod)):
            return tainted, pending
        return tainted, pending

    def _eval_call(self, node: ast.Call) -> tuple[bool, list]:
        func_name = None
        if isinstance(node.func, ast.Name):
            func_name = node.func.id
        elif isinstance(node.func, ast.Attribute):
            func_name = node.func.attr
        pending: list = []
        for arg in node.args:
            pending += self.eval(arg)[1]
        for kw in node.keywords:
            pending += self.eval(kw.value)[1]
        if func_name in self.config.mask64_masking_calls:
            # mask64(...) truncates: absolve everything inside.
            return False, []
        return False, pending

    # -- statement walking ---------------------------------------------
    def run_function(self, func: ast.FunctionDef) -> list:
        """Two-pass flow-insensitive analysis of one function body."""
        args = func.args
        params = (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        )
        self.tainted = {
            a.arg for a in params
            if a.arg in self.config.mask64_word_names
        }
        # Pass 1: propagate taint through assignments (loop-carried
        # values settle); findings are discarded.
        self._walk(func.body, collect=False)
        # Pass 2: collect findings against the settled taint set.
        self.findings = []
        self._walk(func.body, collect=True)
        return self.findings

    def _walk(self, body: list, collect: bool) -> None:
        for stmt in body:
            self._walk_stmt(stmt, collect)

    def _emit(self, pending: list, collect: bool) -> None:
        if collect:
            self.findings.extend(pending)

    def _walk_stmt(self, stmt: ast.stmt, collect: bool) -> None:
        if isinstance(stmt, ast.Assign):
            tainted, pending = self.eval(stmt.value)
            self._emit(pending, collect)
            for target in stmt.targets:
                self._assign_target(target, tainted)
        elif isinstance(stmt, ast.AnnAssign):
            tainted, pending = self.eval(stmt.value)
            self._emit(pending, collect)
            self._assign_target(stmt.target, tainted)
        elif isinstance(stmt, ast.AugAssign):
            target_t = (
                isinstance(stmt.target, ast.Name)
                and stmt.target.id in self.tainted
            )
            value_t, pending = self.eval(stmt.value)
            self._emit(pending, collect)
            if (target_t or value_t) and isinstance(stmt.op, _GROWTH_BINOPS):
                if collect:
                    op = _OP_NAMES[type(stmt.op)]
                    self.findings.append(self.ctx.finding(
                        self.rule, stmt,
                        f"unmasked {op}= on a packed-word value can exceed "
                        "64 bits; mask the result with & MASK64",
                    ))
            if isinstance(stmt.op, ast.BitAnd) and _is_mask_operand(
                stmt.value, self.config.mask64_mask_names
            ):
                self._assign_target(stmt.target, False)
            elif isinstance(stmt.target, ast.Name) and value_t:
                self.tainted.add(stmt.target.id)
        elif isinstance(stmt, (ast.Expr, ast.Return)):
            _, pending = self.eval(stmt.value)
            self._emit(pending, collect)
        elif isinstance(stmt, (ast.If, ast.While)):
            _, pending = self.eval(stmt.test)
            self._emit(pending, collect)
            self._walk(stmt.body, collect)
            self._walk(stmt.orelse, collect)
        elif isinstance(stmt, ast.For):
            _, pending = self.eval(stmt.iter)
            self._emit(pending, collect)
            self._walk(stmt.body, collect)
            self._walk(stmt.orelse, collect)
        elif isinstance(stmt, (ast.With, ast.Try)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.stmt):
                    self._walk_stmt(child, collect)
                elif isinstance(child, ast.withitem):
                    _, pending = self.eval(child.context_expr)
                    self._emit(pending, collect)
                elif isinstance(child, ast.ExceptHandler):
                    self._walk(child.body, collect)
        # Nested function/class defs are analyzed separately by the rule.

    def _assign_target(self, target: ast.expr, tainted: bool) -> None:
        if isinstance(target, ast.Name):
            if tainted:
                self.tainted.add(target.id)
            else:
                self.tainted.discard(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._assign_target(elt, tainted)


@register
class Mask64Rule(Rule):
    """Unmasked growth arithmetic on packed 64-bit words."""

    id = "unmasked-op"
    family = "mask64"
    description = (
        "arithmetic on packed 64-bit words must flow through mask64/& MASK64 "
        "(paper §3.3 semantics assume C uint64 wraparound)"
    )
    scope_field = "mask64_scope"

    def check(self, ctx: FileContext):
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if any(
                node.name.endswith(suffix)
                for suffix in ctx.config.mask64_exempt_suffixes
            ):
                continue
            evaluator = _TaintEval(self, ctx)
            yield from evaluator.run_function(node)


__all__ = ["Mask64Rule"]
