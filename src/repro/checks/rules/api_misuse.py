"""api-misuse: repo-wide API hygiene rules.

Three rules, all file-agnostic (they run everywhere except the
configured excludes):

* **bare-except** -- ``except:`` swallows ``KeyboardInterrupt`` and
  ``SystemExit``; in the daemon it can hide worker crashes as cache
  misses.  Catch ``Exception`` (or something narrower).
* **mutable-default** -- a literal ``[]``/``{}``/``set()`` default is
  shared across calls; gate construction behind ``None``.
* **unrouted-lookup** -- the optimal-circuit tables are keyed by
  *canonical representatives* (paper Section 3.2: equivalence under wire
  relabeling and inversion gives a ~48x reduction).  A lookup whose key
  was never canonicalized silently misses ~47/48 of equivalent
  functions.  Calls like ``table.get(word)`` are flagged unless the key
  argument's name (or the call producing it) marks it as canonical.
"""

from __future__ import annotations

import ast

from repro.checks.registry import FileContext, Rule, register

#: Receiver-name fragments that mark an object as an optimal-circuit
#: table (``self.table``, ``db``, ``database``).
_TABLE_FRAGMENTS = ("table", "db", "database")


@register
class BareExceptRule(Rule):
    """``except:`` with no exception type."""

    id = "bare-except"
    family = "api-misuse"
    description = (
        "bare `except:` swallows KeyboardInterrupt/SystemExit; catch "
        "Exception or narrower"
    )
    scope_field = None

    def check(self, ctx: FileContext):
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield ctx.finding(
                    self, node,
                    "bare `except:` also catches KeyboardInterrupt and "
                    "SystemExit; use `except Exception:` or narrower",
                )


@register
class MutableDefaultRule(Rule):
    """Mutable literal used as a parameter default."""

    id = "mutable-default"
    family = "api-misuse"
    description = (
        "mutable default argument ([]/{}/set()) is shared across calls; "
        "default to None and construct inside the function"
    )
    scope_field = None

    _MUTABLE_CTORS = ("list", "dict", "set", "bytearray")

    def _is_mutable(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in self._MUTABLE_CTORS
        )

    def check(self, ctx: FileContext):
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield ctx.finding(
                        self, default,
                        f"mutable default argument in {node.name}(): the "
                        "same object is shared across every call; use None "
                        "and construct inside the body",
                    )


def _terminal_name(node: ast.expr) -> "str | None":
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


@register
class UnroutedLookupRule(Rule):
    """Canonical-table lookups whose key was never canonicalized."""

    id = "unrouted-lookup"
    family = "api-misuse"
    description = (
        "optimal-table lookup key must go through canonical_representative "
        "(paper §3.2): raw lookups miss ~47/48 equivalent functions"
    )
    scope_field = None

    def _looks_canonical(
        self, node: ast.expr, ctx: FileContext, canonical_names: set
    ) -> bool:
        config = ctx.config
        name = _terminal_name(node)
        if name is not None:
            lowered = name.lower()
            if any(frag in lowered for frag in config.canonical_arg_names):
                return True
            if name in canonical_names:
                return True
        if isinstance(node, ast.Call):
            fn = _terminal_name(node.func)
            if fn is not None and any(
                frag in fn.lower() for frag in config.canonical_call_names
            ):
                return True
        if isinstance(node, ast.Subscript):
            return self._looks_canonical(node.value, ctx, canonical_names)
        return False

    def _canonical_assigned_names(self, ctx: FileContext) -> set:
        """Names assigned (anywhere in the file) from canonical* calls."""
        names: set = set()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            if not isinstance(value, ast.Call):
                continue
            fn = _terminal_name(value.func)
            if fn is None or not any(
                frag in fn.lower()
                for frag in ctx.config.canonical_call_names
            ):
                continue
            for target in node.targets:
                targets = (
                    target.elts
                    if isinstance(target, (ast.Tuple, ast.List))
                    else [target]
                )
                for t in targets:
                    if isinstance(t, ast.Name):
                        names.add(t.id)
        return names

    def check(self, ctx: FileContext):
        canonical_names = self._canonical_assigned_names(ctx)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if not isinstance(node.func, ast.Attribute):
                continue
            if node.func.attr not in ctx.config.canonical_lookup_methods:
                continue
            receiver = _terminal_name(node.func.value)
            if receiver is None:
                continue
            lowered = receiver.lower()
            if not any(frag in lowered for frag in _TABLE_FRAGMENTS):
                continue
            if not node.args:
                continue
            key_arg = node.args[0]
            if self._looks_canonical(key_arg, ctx, canonical_names):
                continue
            yield ctx.finding(
                self, node,
                f"{receiver}.{node.func.attr}(...) key is not visibly "
                "canonicalized; route it through canonical_representative "
                "first, or suppress with the reason the table is complete",
            )


__all__ = ["BareExceptRule", "MutableDefaultRule", "UnroutedLookupRule"]
