"""Built-in rule modules; importing this package registers them all."""

from __future__ import annotations

from repro.checks.graph import rules as graph_rules  # noqa: F401
from repro.checks.rules import (  # noqa: F401  (import = registration)
    api_misuse,
    arch,
    determinism,
    locks,
    mask64,
    todo,
    waits,
)

__all__ = [
    "api_misuse",
    "arch",
    "determinism",
    "graph_rules",
    "locks",
    "mask64",
    "todo",
    "waits",
]
