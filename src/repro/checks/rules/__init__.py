"""Built-in rule modules; importing this package registers them all."""

from __future__ import annotations

from repro.checks.rules import (  # noqa: F401  (import = registration)
    api_misuse,
    determinism,
    layering,
    locks,
    mask64,
    store,
    todo,
    waits,
)

__all__ = [
    "api_misuse",
    "determinism",
    "layering",
    "locks",
    "mask64",
    "store",
    "todo",
    "waits",
]
