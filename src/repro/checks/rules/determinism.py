"""determinism: no hidden nondeterminism in compute paths.

The synthesis engine's results must be reproducible: the paper's tables
are exact counts, the service's result cache assumes a query's answer
never changes, and the benchmark harness compares byte-identical
outputs.  Any unseeded RNG or wall-clock read in a compute path breaks
that silently.

Flagged inside the configured scope (``repro/core``, ``repro/synth``,
``repro/service/workers.py``, ...):

* module-level ``random.*`` draws (global, unseeded RNG state);
* ``numpy.random`` legacy global functions (``np.random.seed``,
  ``np.random.shuffle``, ...) and ``default_rng()``/``RandomState()``
  called *without* a seed;
* wall-clock reads: ``time.time``, ``datetime.now``/``utcnow``/
  ``today`` (monotonic timers stay allowed -- they measure, they do not
  leak into results);
* entropy sources: ``os.urandom``, ``uuid.uuid1``/``uuid4``,
  ``secrets.*``.

Observability code (``repro/service/metrics.py`` by default) is exempt
via config -- metrics legitimately timestamp things.
"""

from __future__ import annotations

import ast

from repro.checks.registry import FileContext, Rule, register

#: Module-level functions of ``random`` that draw from the global RNG.
_RANDOM_GLOBAL_FNS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "sample",
    "shuffle", "uniform", "getrandbits", "seed", "gauss", "normalvariate",
    "betavariate", "expovariate", "triangular", "vonmisesvariate",
    "randbytes",
})

#: Legacy numpy global-state RNG functions.
_NP_RANDOM_GLOBAL_FNS = frozenset({
    "seed", "random", "rand", "randn", "randint", "random_sample",
    "shuffle", "permutation", "choice", "bytes", "uniform", "normal",
})

#: Wall-clock reads (exact dotted names after alias resolution).
_WALL_CLOCK = frozenset({
    "time.time", "time.time_ns", "time.ctime", "time.localtime",
    "time.gmtime",
})

#: Entropy sources.
_ENTROPY = frozenset({"os.urandom", "uuid.uuid1", "uuid.uuid4"})

#: datetime constructors that read the clock.
_DATETIME_NOW = frozenset({"now", "utcnow", "today"})


def _dotted(node: ast.expr) -> "str | None":
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return f"{base}.{node.attr}" if base else None
    return None


def _alias_map(tree: ast.Module) -> dict[str, str]:
    """name-in-file -> canonical dotted prefix, from import statements."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                aliases[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
    return aliases


@register
class DeterminismRule(Rule):
    """Unseeded randomness and wall-clock reads in compute paths."""

    id = "nondeterminism"
    family = "determinism"
    description = (
        "no unseeded random / wall-clock / entropy calls in synthesis and "
        "worker compute paths (results must be reproducible)"
    )
    scope_field = "determinism_scope"

    def applies_to(self, path: str, config) -> bool:
        if any(fragment in path for fragment in config.determinism_exempt):
            return False
        return super().applies_to(path, config)

    def check(self, ctx: FileContext):
        aliases = _alias_map(ctx.tree)
        allowed_time = frozenset(ctx.config.allowed_time_functions)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted is None:
                continue
            head, _, rest = dotted.partition(".")
            resolved_head = aliases.get(head, head)
            resolved = f"{resolved_head}.{rest}" if rest else resolved_head
            finding = self._classify(node, resolved, allowed_time)
            if finding is not None:
                yield ctx.finding(self, node, finding)

    def _classify(
        self, node: ast.Call, resolved: str, allowed_time: frozenset
    ) -> "str | None":
        parts = resolved.split(".")
        # random.<fn> on the module's global RNG.
        if parts[0] == "random" and len(parts) == 2 \
                and parts[1] in _RANDOM_GLOBAL_FNS:
            return (
                f"{resolved}() draws from the global unseeded RNG; use an "
                "explicitly seeded random.Random / MersenneTwister instance"
            )
        # numpy legacy global RNG, any alias depth: numpy.random.<fn>.
        if len(parts) >= 3 and parts[0] == "numpy" and parts[1] == "random":
            fn = parts[2]
            if fn in _NP_RANDOM_GLOBAL_FNS:
                return (
                    f"numpy.random.{fn}() mutates numpy's global RNG state; "
                    "pass an explicitly seeded numpy.random.Generator"
                )
            if fn in ("default_rng", "RandomState") and not node.args \
                    and not node.keywords:
                return (
                    f"numpy.random.{fn}() without a seed is nondeterministic; "
                    "pass an explicit seed"
                )
        if resolved in _WALL_CLOCK:
            return (
                f"{resolved}() reads the wall clock inside a compute path; "
                "use time.monotonic()/perf_counter() for timing, or plumb "
                "timestamps in from the caller"
            )
        if resolved.startswith("time.") and resolved not in allowed_time \
                and resolved not in _WALL_CLOCK and len(parts) == 2:
            # Unknown time.* function: conservatively ignore (strptime etc.)
            return None
        if resolved in _ENTROPY or parts[0] == "secrets":
            return (
                f"{resolved}() is an entropy source; compute paths must be "
                "reproducible from explicit seeds"
            )
        # datetime.datetime.now() / datetime.now() after from-import.
        if parts[0] == "datetime" and parts[-1] in _DATETIME_NOW:
            return (
                f"{resolved}() reads the wall clock; plumb timestamps in "
                "from the caller"
            )
        return None


__all__ = ["DeterminismRule"]
