"""Architecture boundary rules: protected names stay behind their layer.

The *shape* of the architecture -- which layer may import which -- is
declared once in ``[tool.repro.checks]`` (``arch-layers`` /
``arch-allow``) and enforced whole-program by the ``layer-violation``
rule under ``repro check --graph``.  What remains here are the two
*protected-name* boundaries that need per-file syntax, not graph
reachability, and therefore run in every mode including single-file:

* ``engine-layering`` -- concrete synthesizers
  (``OptimalSynthesizer``, ``mmd_synthesize``, ...) may only be
  imported inside ``repro/engines/`` and the packages defining them;
  everything above goes through ``repro.engines``
  (``create_engine`` / ``Engine.synthesize``) so every caller gets the
  same result contract, caching hooks, and capability metadata.

* ``store-layering`` -- numpy persistence primitives (``np.load``,
  ``np.savez``, ``np.memmap``, ...) may only be called inside
  ``repro/store/`` and the legacy ``.npz`` codec
  ``repro/synth/database.py``; anything else bypasses header
  validation, the checksum, and the crash-safe rename discipline.

Unlike the layer DAG, these apply to lazy (function-scoped) imports
too: deferring an import does not make a forbidden dependency legal,
it only hides it from the import graph.
"""

from __future__ import annotations

import ast

from repro.checks.astutil import call_root
from repro.checks.config import CheckConfig
from repro.checks.registry import FileContext, Rule, register

#: Module aliases recognized as numpy at the root of a call chain.
_NUMPY_NAMES = frozenset({"np", "numpy"})


@register
class EngineLayeringRule(Rule):
    """Direct imports of concrete engine classes above the engine layer."""

    id = "engine-layering"
    family = "layering"
    description = (
        "concrete synthesis engines (OptimalSynthesizer, mmd_synthesize, "
        "...) may only be imported inside repro/engines/ and the packages "
        "defining them; everything above goes through repro.engines"
    )
    scope_field = None

    def applies_to(self, path: str, config: CheckConfig) -> bool:
        if any(fragment in path for fragment in config.layering_allowed):
            return False
        return super().applies_to(path, config)

    def check(self, ctx: FileContext):
        flagged = frozenset(ctx.config.layering_engine_names)
        if not flagged:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ImportFrom) or node.level:
                continue
            for alias in node.names:
                if alias.name in flagged:
                    yield ctx.finding(
                        self, node,
                        f"direct import of concrete engine "
                        f"{alias.name!r}; route through repro.engines "
                        "(create_engine / Engine.synthesize) instead",
                    )


@register
class StoreLayeringRule(Rule):
    """numpy persistence primitives called outside the store boundary."""

    id = "store-layering"
    family = "layering"
    description = (
        "numpy persistence primitives (np.load, np.savez, np.memmap, ...) "
        "may only be called inside repro/store/ and the legacy codec "
        "repro/synth/database.py; everything else goes through repro.store"
    )
    scope_field = None

    def applies_to(self, path: str, config: CheckConfig) -> bool:
        if any(fragment in path for fragment in config.store_allowed):
            return False
        return super().applies_to(path, config)

    def check(self, ctx: FileContext):
        flagged = frozenset(ctx.config.store_persistence_calls)
        if not flagged:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr not in flagged:
                continue
            if call_root(func) not in _NUMPY_NAMES:
                continue
            yield ctx.finding(
                self, node,
                f"direct numpy persistence call 'np.{func.attr}' outside "
                "the store boundary; route through repro.store "
                "(open_database / write_rdb / convert) instead",
            )


__all__ = ["EngineLayeringRule", "StoreLayeringRule"]
