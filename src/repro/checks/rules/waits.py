"""unbounded-wait: every blocking wait in the service must be bounded.

The resilience work (PR 4) exists because the daemon must never hang: a
wedged dispatcher, a dead worker, or a lost wakeup should degrade into a
timeout that some layer can observe and act on.  A bare ``.wait()`` or
``.join()`` undoes that guarantee at a single call site -- the thread
parks forever and no supervisor ever hears about it.

This rule flags calls to the configured wait methods (``wait``,
``join`` by default) that pass neither a positional argument nor a
``timeout=`` keyword, inside the configured scope (``repro/service/``).
The stdlib's ``multiprocessing.Pool.join`` genuinely has no timeout
parameter; such sites carry a ``# repro: allow[unbounded-wait]``
suppression with the reason spelled out.
"""

from __future__ import annotations

import ast

from repro.checks.registry import FileContext, Rule, register
from repro.checks.rules.locks import _expr_text


@register
class UnboundedWaitRule(Rule):
    """``.wait()``/``.join()`` calls with no timeout."""

    id = "unbounded-wait"
    family = "lock-discipline"
    description = (
        "wait()/join() without a timeout can park a thread forever; pass "
        "a bound (loop if the wait must be indefinite) or suppress with "
        "a reason where the API has no timeout parameter"
    )
    scope_field = "wait_scope"

    def check(self, ctx: FileContext):
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if not isinstance(node.func, ast.Attribute):
                continue
            method = node.func.attr
            if method not in ctx.config.wait_methods:
                continue
            if node.args:
                continue  # positional timeout
            if any(kw.arg == "timeout" for kw in node.keywords):
                continue
            receiver = _expr_text(node.func.value)
            what = f"{receiver}.{method}" if receiver else method
            yield ctx.finding(
                self, node,
                f"{what}() has no timeout and may block forever; pass "
                "timeout= (loop on it if the wait must be indefinite)",
            )


__all__ = ["UnboundedWaitRule"]
