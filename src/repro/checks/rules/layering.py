"""engine-layering: concrete synthesizers stay behind repro.engines.

The unified engine layer (:mod:`repro.engines`) is the one sanctioned
route from "I have a specification" to "here is a circuit".  Code above
it -- the CLI, the service daemon, analysis, apps -- must go through
``create_engine``/``Engine.synthesize`` so every caller gets the same
result contract, the same caching hooks, and the same capability
metadata.  A direct import of ``OptimalSynthesizer`` or
``mmd_synthesize`` in the service layer quietly forks the API back into
seven per-engine dialects.

This rule flags imports of the configured concrete-engine names
(classes and entry-point functions) anywhere outside the allowed
fragments: the adapters themselves (``repro/engines/``), the packages
that define the engines (``repro/synth/``, ``repro/sat/``,
``repro/stabilizer/``), and the top-level public re-export
(``repro/__init__.py``).  Tests, benchmarks, and scripts are excluded
globally, as everywhere else in the checker.
"""

from __future__ import annotations

import ast

from repro.checks.registry import FileContext, Rule, register


@register
class EngineLayeringRule(Rule):
    """Direct imports of concrete engine classes above the engine layer."""

    id = "engine-layering"
    family = "layering"
    description = (
        "concrete synthesis engines (OptimalSynthesizer, mmd_synthesize, "
        "...) may only be imported inside repro/engines/ and the packages "
        "defining them; everything above goes through repro.engines"
    )
    scope_field = None

    def applies_to(self, path: str, config) -> bool:
        if any(fragment in path for fragment in config.layering_allowed):
            return False
        return super().applies_to(path, config)

    def check(self, ctx: FileContext):
        flagged = frozenset(ctx.config.layering_engine_names)
        if not flagged:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ImportFrom) or node.level:
                continue
            for alias in node.names:
                if alias.name in flagged:
                    yield ctx.finding(
                        self, node,
                        f"direct import of concrete engine "
                        f"{alias.name!r}; route through repro.engines "
                        "(create_engine / Engine.synthesize) instead",
                    )


__all__ = ["EngineLayeringRule"]
