"""store-layering: database persistence stays behind repro.store.

The store subsystem (:mod:`repro.store`) is the one sanctioned boundary
between the optimal-circuit database and the filesystem: it owns the
``.rdb`` flat format, the crash-safe writer, the zero-copy mappings,
and the format resolver -- and :mod:`repro.synth.database` owns the
legacy ``.npz`` codec it wraps.  Code anywhere else that reaches for
``np.load``/``np.savez``/``np.memmap`` on a database file silently
forks the persistence contract: it bypasses header validation, the
checksum, the crash-safe rename discipline, and the sidecar resolution
the service workers rely on to share one mapping.

This rule flags calls to the configured numpy persistence primitives
(``np.load``, ``np.savez``, ``np.savez_compressed``, ``np.save``,
``np.memmap``, ``np.lib.format.open_memmap``) in any file outside the
allowed fragments.  Non-database uses of those primitives do not exist
in this codebase by policy -- arrays that need persisting go through a
store or an explicit codec module, which is exactly what the allowed
list enumerates.
"""

from __future__ import annotations

import ast

from repro.checks.registry import FileContext, Rule, register

#: Module aliases recognized as numpy at the root of a call chain.
_NUMPY_NAMES = frozenset({"np", "numpy"})


def _call_root(node: ast.AST) -> "str | None":
    """The leftmost ``Name`` id of an attribute chain, or None."""
    while isinstance(node, ast.Attribute):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


@register
class StoreLayeringRule(Rule):
    """numpy persistence primitives called outside the store boundary."""

    id = "store-layering"
    family = "layering"
    description = (
        "numpy persistence primitives (np.load, np.savez, np.memmap, ...) "
        "may only be called inside repro/store/ and the legacy codec "
        "repro/synth/database.py; everything else goes through repro.store"
    )
    scope_field = None

    def applies_to(self, path: str, config) -> bool:
        if any(fragment in path for fragment in config.store_allowed):
            return False
        return super().applies_to(path, config)

    def check(self, ctx: FileContext):
        flagged = frozenset(ctx.config.store_persistence_calls)
        if not flagged:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr not in flagged:
                continue
            if _call_root(func) not in _NUMPY_NAMES:
                continue
            yield ctx.finding(
                self, node,
                f"direct numpy persistence call 'np.{func.attr}' outside "
                "the store boundary; route through repro.store "
                "(open_database / write_rdb / convert) instead",
            )


__all__ = ["StoreLayeringRule"]
