"""lock-discipline: guarded-state and blocking-call hygiene.

The service daemon (PR 1) shares state between connection threads, the
dispatcher, and shutdown paths, guarded by ``threading.Lock`` /
``Condition`` objects.  Two classes of mistake are caught statically:

* **mixed-lock-mutation** -- an instance attribute assigned both inside
  a ``with self._lock:`` block and outside one (in non-``__init__``
  methods) is a data race waiting to happen: either every mutation must
  take the lock or none needs to.
* **blocking-call-under-lock** -- calling something that can block for
  an unbounded time (``socket.recv``, ``Event.wait``, ``pool.map``,
  ``queue.get`` without a condition, ``join``, ``sleep``...) while a
  lock is held starves every other thread contending for it.  Waiting on
  the *held* condition itself (``self._cond.wait()`` inside ``with
  self._cond:``) is the one sanctioned pattern -- conditions release the
  lock while waiting.

Lock objects are recognized by attribute name (configurable fragments:
``lock``, ``mutex``, ``cond``, ``not_empty``).
"""

from __future__ import annotations

import ast

from repro.checks.registry import FileContext, Rule, register


def _expr_text(node: ast.expr) -> "str | None":
    """Dotted text of a Name/Attribute chain (``self._lock``), else None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _expr_text(node.value)
        return f"{base}.{node.attr}" if base else None
    return None


def _is_lock_expr(node: ast.expr, lock_names: tuple[str, ...]) -> bool:
    """True when a ``with`` context expression looks like a lock."""
    text = _expr_text(node)
    if text is None:
        return False
    terminal = text.rsplit(".", 1)[-1].lower()
    return any(fragment in terminal for fragment in lock_names)


class _MethodScan(ast.NodeVisitor):
    """Walk one method, tracking the stack of held locks."""

    def __init__(self, rule: "Rule", ctx: FileContext, is_init: bool):
        self.rule = rule
        self.ctx = ctx
        self.config = ctx.config
        self.is_init = is_init
        self.lock_stack: list[str] = []
        #: attr name -> list of (locked?, node) mutation sites.
        self.mutations: dict[str, list] = {}
        self.blocking: list = []

    # -- lock tracking -------------------------------------------------
    def visit_With(self, node: ast.With) -> None:
        lock_texts = [
            _expr_text(item.context_expr)
            for item in node.items
            if _is_lock_expr(item.context_expr, self.config.lock_names)
        ]
        self.lock_stack.extend(t for t in lock_texts if t)
        for stmt in node.body:
            self.visit(stmt)
        for _ in lock_texts:
            if self.lock_stack:
                self.lock_stack.pop()

    # -- attribute mutations -------------------------------------------
    def _record_target(self, target: ast.expr) -> None:
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            self.mutations.setdefault(target.attr, []).append(
                (bool(self.lock_stack), target)
            )
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._record_target(elt)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record_target(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_target(node.target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._record_target(node.target)
        self.generic_visit(node)

    # -- blocking calls ------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        if self.lock_stack and isinstance(node.func, ast.Attribute):
            method = node.func.attr
            receiver = _expr_text(node.func.value)
            if self._is_blocking(method, receiver):
                # Waiting on the lock object we hold is the condition-
                # variable pattern: wait() releases the lock.
                if not (receiver is not None and receiver in self.lock_stack):
                    self.blocking.append((node, method, receiver))
        self.generic_visit(node)

    def _is_blocking(self, method: str, receiver: "str | None") -> bool:
        if method in self.config.blocking_methods:
            return True
        if method in ("get", "put"):
            if receiver is None:
                return False
            terminal = receiver.rsplit(".", 1)[-1].lower()
            return any(
                fragment in terminal
                for fragment in self.config.blocking_queue_receivers
            )
        return False

    # Do not descend into nested defs: they execute later, under
    # whatever locks *their* callers hold.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        return

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        return

    def visit_Lambda(self, node: ast.Lambda) -> None:
        return


@register
class MixedLockMutationRule(Rule):
    """Attributes mutated both under a lock and without it."""

    id = "mixed-lock-mutation"
    family = "lock-discipline"
    description = (
        "instance attribute mutated both inside and outside "
        "`with self._lock` blocks (racy: pick one discipline)"
    )
    scope_field = "lock_scope"

    def check(self, ctx: FileContext):
        for cls in ast.walk(ctx.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            # attr -> {"locked": [nodes], "unlocked": [nodes]}
            sites: dict[str, dict[str, list]] = {}
            for item in cls.body:
                if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if item.name in ctx.config.lock_init_methods:
                    continue
                scan = _MethodScan(self, ctx, is_init=False)
                for stmt in item.body:
                    scan.visit(stmt)
                for attr, entries in scan.mutations.items():
                    bucket = sites.setdefault(
                        attr, {"locked": [], "unlocked": []}
                    )
                    for locked, node in entries:
                        bucket["locked" if locked else "unlocked"].append(node)
            for attr in sorted(sites):
                bucket = sites[attr]
                if bucket["locked"] and bucket["unlocked"]:
                    for node in bucket["unlocked"]:
                        yield ctx.finding(
                            self, node,
                            f"self.{attr} is assigned under a lock elsewhere "
                            f"in {cls.name} but mutated here without one; "
                            "take the lock or document the happens-before",
                        )


@register
class BlockingCallUnderLockRule(Rule):
    """Unbounded blocking calls made while a lock is held."""

    id = "blocking-call-under-lock"
    family = "lock-discipline"
    description = (
        "blocking call (recv/wait/join/get/map/sleep/...) while holding a "
        "lock starves other threads; release the lock first or use the "
        "held condition's own wait()"
    )
    scope_field = "lock_scope"

    def check(self, ctx: FileContext):
        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            scan = _MethodScan(self, ctx, is_init=False)
            for stmt in func.body:
                scan.visit(stmt)
            for node, method, receiver in scan.blocking:
                what = f"{receiver}.{method}" if receiver else method
                yield ctx.finding(
                    self, node,
                    f"{what}() may block while a lock is held; move it "
                    "outside the `with` block or wait on the held "
                    "condition instead",
                )


__all__ = ["BlockingCallUnderLockRule", "MixedLockMutationRule"]
