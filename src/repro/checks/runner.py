"""Check runner: file discovery, rule dispatch, suppression filtering.

Two entry points:

* :func:`check_paths` -- run rules over files/directories, as the
  ``repro check`` CLI does;
* :func:`check_source` -- run rules over an in-memory source string
  (used by the self-tests; ``path`` still matters because rule scopes
  match on it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.checks.config import CheckConfig, load_config
from repro.checks.findings import Finding, Severity
from repro.checks.registry import FileContext, Rule, select_rules
from repro.checks.suppressions import (
    apply_suppressions,
    extract_comments,
    parse_suppressions,
)

import ast


@dataclass
class CheckReport:
    """Aggregated result of one check run."""

    findings: "list[Finding]" = field(default_factory=list)
    suppressed: "list[Finding]" = field(default_factory=list)
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def merge(self, other: "CheckReport") -> None:
        self.findings.extend(other.findings)
        self.suppressed.extend(other.suppressed)
        self.files_checked += other.files_checked

    def sort(self) -> None:
        self.findings.sort(key=Finding.sort_key)
        self.suppressed.sort(key=Finding.sort_key)


def iter_python_files(paths: "list[str | Path]") -> "list[Path]":
    """Expand files/directories into a sorted list of ``.py`` files."""
    seen: set = set()
    result: "list[Path]" = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            candidates = [path]
        else:
            candidates = []
        for candidate in candidates:
            key = candidate.resolve()
            if key not in seen:
                seen.add(key)
                result.append(candidate)
    return result


def check_source(
    source: str,
    path: str = "<string>",
    config: "CheckConfig | None" = None,
    select: "tuple[str, ...] | list[str] | None" = None,
) -> CheckReport:
    """Run the (selected) rules over one in-memory source string.

    ``path`` participates in scope matching, so tests pass values like
    ``src/repro/core/example.py`` to trigger scoped rules.
    """
    if config is None:
        config = CheckConfig()
    rules = select_rules(select)
    report = CheckReport(files_checked=1)
    posix = path.replace("\\", "/")
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        report.findings.append(Finding(
            path=posix,
            line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
            rule_id="parse-error",
            family="checks",
            message=f"file does not parse: {exc.msg}",
            severity=Severity.ERROR,
        ))
        return report
    comments = extract_comments(source)
    ctx = FileContext(
        path=posix, source=source, tree=tree, comments=comments, config=config
    )
    raw: "list[Finding]" = []
    for rule in rules:
        if not rule.applies_to(posix, config):
            continue
        raw.extend(rule.check(ctx))
    suppressions, problems = parse_suppressions(source, comments, posix)
    kept, suppressed = apply_suppressions(raw, suppressions)
    report.findings.extend(kept)
    report.findings.extend(problems)
    report.suppressed.extend(suppressed)
    report.sort()
    return report


def check_paths(
    paths: "list[str | Path]",
    config: "CheckConfig | None" = None,
    select: "tuple[str, ...] | list[str] | None" = None,
    root: "Path | str | None" = None,
) -> CheckReport:
    """Run the (selected) rules over files and directory trees.

    ``config`` defaults to :func:`load_config` relative to ``root`` (the
    current directory when omitted), so a ``[tool.repro.checks]`` table
    in pyproject.toml is honored automatically.
    """
    if config is None:
        config = load_config(root)
    report = CheckReport()
    for path in iter_python_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            report.findings.append(Finding(
                path=path.as_posix(), line=1, col=0,
                rule_id="read-error", family="checks",
                message=f"cannot read file: {exc}",
                severity=Severity.ERROR,
            ))
            report.files_checked += 1
            continue
        report.merge(check_source(
            source, path=path.as_posix(), config=config, select=select
        ))
    report.sort()
    return report


__all__ = ["CheckReport", "check_paths", "check_source", "iter_python_files"]
