"""Check runner: file discovery, rule dispatch, suppression filtering.

Entry points:

* :func:`check_paths` -- run rules over files/directories, as the
  ``repro check`` CLI does.  With ``graph=True`` the per-file pass is
  followed by a whole-program pass: every parsed file is folded into a
  :class:`~repro.checks.graph.project.ProjectIndex` (consulting the
  content-hash ``cache`` when given) and the registered
  :class:`~repro.checks.registry.ProjectRule` rules run once over it;
* :func:`check_source` -- run per-file rules over an in-memory source
  string (used by the self-tests; ``path`` still matters because rule
  scopes match on it);
* :func:`changed_python_files` -- the ``--changed`` file set from git.
"""

from __future__ import annotations

import ast
import subprocess
from dataclasses import dataclass, field
from pathlib import Path

from repro.checks.config import CheckConfig, load_config
from repro.checks.findings import Finding, Severity
from repro.checks.registry import (
    FileContext,
    ProjectRule,
    Rule,
    select_rules,
)
from repro.checks.suppressions import (
    Suppression,
    apply_suppressions,
    extract_comments,
    parse_suppressions,
)


@dataclass
class CheckReport:
    """Aggregated result of one check run."""

    findings: "list[Finding]" = field(default_factory=list)
    suppressed: "list[Finding]" = field(default_factory=list)
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def merge(self, other: "CheckReport") -> None:
        self.findings.extend(other.findings)
        self.suppressed.extend(other.suppressed)
        self.files_checked += other.files_checked

    def sort(self) -> None:
        self.findings.sort(key=Finding.sort_key)
        self.suppressed.sort(key=Finding.sort_key)


def iter_python_files(paths: "list[str | Path]") -> "list[Path]":
    """Expand files/directories into a sorted list of ``.py`` files."""
    seen: set = set()
    result: "list[Path]" = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            candidates = [path]
        else:
            candidates = []
        for candidate in candidates:
            try:
                key = candidate.resolve()
            except OSError:  # pragma: no cover - unresolvable path
                key = candidate
            if key not in seen:
                seen.add(key)
                result.append(candidate)
    return result


def changed_python_files(
    root: "Path | str | None" = None,
    base_ref: str = "origin/main",
) -> "list[Path] | None":
    """``.py`` files changed since ``merge-base HEAD base_ref``, plus
    untracked ones; ``None`` when git is unavailable or the base ref
    does not exist (callers fall back to the full tree)."""
    cwd = str(root) if root is not None else None

    def _git(*argv: str) -> str:
        return subprocess.run(
            ["git", *argv],
            capture_output=True, text=True, check=True, cwd=cwd, timeout=30,
        ).stdout

    try:
        top = _git("rev-parse", "--show-toplevel").strip()
        base = _git("merge-base", "HEAD", base_ref).strip()
        diff = _git("diff", "--name-only", "-z", base, "--")
        untracked = _git("ls-files", "--others", "--exclude-standard", "-z")
    except (OSError, subprocess.SubprocessError):
        return None
    names = {
        name
        for blob in (diff, untracked)
        for name in blob.split("\0")
        if name.endswith(".py")
    }
    result: "list[Path]" = []
    for name in sorted(names):
        path = Path(top) / name
        if path.is_file():
            result.append(path)
    return result


def _check_file(
    source: str,
    posix: str,
    config: CheckConfig,
    rules: "list[Rule]",
) -> "tuple[CheckReport, ast.Module | None, list[Suppression]]":
    """Per-file pass for one source: report plus reusable artifacts."""
    report = CheckReport(files_checked=1)
    try:
        tree = ast.parse(source, filename=posix)
    except SyntaxError as exc:
        report.findings.append(Finding(
            path=posix,
            line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
            rule_id="parse-error",
            family="checks",
            message=f"file does not parse: {exc.msg}",
            severity=Severity.ERROR,
        ))
        return report, None, []
    comments = extract_comments(source)
    ctx = FileContext(
        path=posix, source=source, tree=tree, comments=comments, config=config
    )
    raw: "list[Finding]" = []
    for rule in rules:
        if rule.project:
            continue  # whole-program rules run after the per-file loop
        if not rule.applies_to(posix, config):
            continue
        raw.extend(rule.check(ctx))
    suppressions, problems = parse_suppressions(
        source, comments, posix, tree=tree
    )
    kept, suppressed = apply_suppressions(raw, suppressions)
    report.findings.extend(kept)
    report.findings.extend(problems)
    report.suppressed.extend(suppressed)
    report.sort()
    return report, tree, suppressions


def check_source(
    source: str,
    path: str = "<string>",
    config: "CheckConfig | None" = None,
    select: "tuple[str, ...] | list[str] | None" = None,
) -> CheckReport:
    """Run the (selected) per-file rules over one in-memory source string.

    ``path`` participates in scope matching, so tests pass values like
    ``src/repro/core/example.py`` to trigger scoped rules.
    """
    if config is None:
        config = CheckConfig()
    rules = select_rules(select)
    posix = path.replace("\\", "/")
    report, _, _ = _check_file(source, posix, config, rules)
    return report


def _run_project_rules(
    rules: "list[Rule]",
    sources: "dict[str, str]",
    trees: "dict[str, ast.Module]",
    suppression_map: "dict[str, list[Suppression]]",
    config: CheckConfig,
    cache=None,
) -> CheckReport:
    """Whole-program pass: build the project index, run ProjectRules."""
    from repro.checks.graph.project import build_project

    report = CheckReport()
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]
    if not project_rules:
        return report
    project = build_project(
        sources.items(), config, cache=cache, trees=trees
    )
    for rule in project_rules:
        raw = [
            finding for finding in rule.check_project(project)
            if rule.applies_to(finding.path, config)
        ]
        for finding in raw:
            covered = any(
                s.covers(finding)
                for s in suppression_map.get(finding.path, [])
            )
            if covered:
                report.suppressed.append(finding)
            else:
                report.findings.append(finding)
    return report


def check_paths(
    paths: "list[str | Path]",
    config: "CheckConfig | None" = None,
    select: "tuple[str, ...] | list[str] | None" = None,
    root: "Path | str | None" = None,
    graph: bool = False,
    cache=None,
) -> CheckReport:
    """Run the (selected) rules over files and directory trees.

    ``config`` defaults to :func:`load_config` relative to ``root`` (the
    current directory when omitted), so a ``[tool.repro.checks]`` table
    in pyproject.toml is honored automatically.  ``graph=True`` adds the
    whole-program pass; ``cache`` is an optional
    :class:`~repro.checks.graph.cache.IndexCache` that lets unchanged
    files skip re-indexing between runs.
    """
    if config is None:
        config = load_config(root)
    rules = select_rules(select)
    report = CheckReport()
    sources: "dict[str, str]" = {}
    trees: "dict[str, ast.Module]" = {}
    suppression_map: "dict[str, list[Suppression]]" = {}
    for path in iter_python_files(paths):
        posix = path.as_posix()
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            report.findings.append(Finding(
                path=posix, line=1, col=0,
                rule_id="read-error", family="checks",
                message=f"cannot read file: {exc}",
                severity=Severity.ERROR,
            ))
            report.files_checked += 1
            continue
        file_report, tree, suppressions = _check_file(
            source, posix, config, rules
        )
        report.merge(file_report)
        if graph:
            sources[posix] = source
            if tree is not None:
                trees[posix] = tree
            suppression_map[posix] = suppressions
    if graph:
        report.merge(_run_project_rules(
            rules, sources, trees, suppression_map, config, cache=cache
        ))
    report.sort()
    return report


__all__ = [
    "CheckReport",
    "changed_python_files",
    "check_paths",
    "check_source",
    "iter_python_files",
]
