"""Reporters: render a :class:`~repro.checks.runner.CheckReport`.

Text output is one ``path:line:col: severity [rule-id] message`` line
per finding plus a summary; JSON output is a stable machine-readable
document (``version`` field guards consumers against format drift).
"""

from __future__ import annotations

import json

from repro.checks.runner import CheckReport

#: Bump when the JSON document shape changes.
JSON_FORMAT_VERSION = 1


def render_text(report: CheckReport) -> str:
    """Human-readable findings listing with a one-line summary."""
    lines = [finding.format() for finding in report.findings]
    noun = "file" if report.files_checked == 1 else "files"
    if report.findings:
        count = len(report.findings)
        fnoun = "finding" if count == 1 else "findings"
        summary = (
            f"{count} {fnoun} ({len(report.suppressed)} suppressed) "
            f"in {report.files_checked} {noun}"
        )
    else:
        summary = (
            f"ok: 0 findings ({len(report.suppressed)} suppressed) "
            f"in {report.files_checked} {noun}"
        )
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: CheckReport) -> str:
    """Machine-readable JSON document (sorted, deterministic)."""
    document = {
        "version": JSON_FORMAT_VERSION,
        "ok": report.ok,
        "files_checked": report.files_checked,
        "findings": [finding.to_dict() for finding in report.findings],
        "suppressed": [finding.to_dict() for finding in report.suppressed],
    }
    return json.dumps(document, indent=2, sort_keys=True)


__all__ = ["JSON_FORMAT_VERSION", "render_json", "render_text"]
