"""Reporters: render a :class:`~repro.checks.runner.CheckReport`.

Text output is one ``path:line:col: severity [rule-id] message`` line
per finding plus a summary; JSON output is a stable machine-readable
document (``version`` field guards consumers against format drift);
SARIF output is a minimal SARIF 2.1.0 log for code-scanning upload.
"""

from __future__ import annotations

import json

from repro.checks.registry import all_rules
from repro.checks.runner import CheckReport

#: Bump when the JSON document shape changes.
JSON_FORMAT_VERSION = 1

#: The SARIF spec revision we emit.
SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_text(report: CheckReport) -> str:
    """Human-readable findings listing with a one-line summary."""
    lines = [finding.format() for finding in report.findings]
    noun = "file" if report.files_checked == 1 else "files"
    if report.findings:
        count = len(report.findings)
        fnoun = "finding" if count == 1 else "findings"
        summary = (
            f"{count} {fnoun} ({len(report.suppressed)} suppressed) "
            f"in {report.files_checked} {noun}"
        )
    else:
        summary = (
            f"ok: 0 findings ({len(report.suppressed)} suppressed) "
            f"in {report.files_checked} {noun}"
        )
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: CheckReport) -> str:
    """Machine-readable JSON document (sorted, deterministic)."""
    document = {
        "version": JSON_FORMAT_VERSION,
        "ok": report.ok,
        "files_checked": report.files_checked,
        "findings": [finding.to_dict() for finding in report.findings],
        "suppressed": [finding.to_dict() for finding in report.suppressed],
    }
    return json.dumps(document, indent=2, sort_keys=True)


def render_sarif(report: CheckReport) -> str:
    """SARIF 2.1.0 log for GitHub code scanning (suppressions omitted:
    SARIF consumers treat absent results as resolved)."""
    descriptions = {rule.id: rule.description for rule in all_rules()}
    referenced = sorted({finding.rule_id for finding in report.findings})
    rules = [
        {
            "id": rule_id,
            "shortDescription": {
                "text": descriptions.get(rule_id, rule_id)
            },
        }
        for rule_id in referenced
    ]
    results = [
        {
            "ruleId": finding.rule_id,
            "level": str(finding.severity),
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path,
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
        }
        for finding in report.findings
    ]
    document = {
        "$schema": _SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-check",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)


__all__ = [
    "JSON_FORMAT_VERSION",
    "SARIF_VERSION",
    "render_json",
    "render_sarif",
    "render_text",
]
