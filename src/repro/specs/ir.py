"""The function-form spec IR: what callers actually hold.

The paper's machinery answers "given a 4-bit *permutation*, what is its
optimal circuit?" -- but real callers hold truth tables with don't-care
rows, multi-output Boolean functions, affine/XOR forms over GF(2), and
lookup tables.  This module gives each of those a frozen, validated,
wire-serializable dataclass; :mod:`repro.specs.embed` turns any of them
into a reversible-permutation embedding and :mod:`repro.specs.compile`
routes the result through the engine layer.

Every form implements the same small surface:

* ``kind`` -- the wire discriminator (``"truth_table"``, ...).
* ``to_multi_output()`` -- normalization to the common denominator, a
  :class:`MultiOutputSpec` (rows of output words, ``None`` = don't-care).
* ``to_wire()`` -- a deterministic JSON-ready dict; the inverse is
  :func:`spec_from_wire`, and the round trip is exact.

Validation happens at construction (``__post_init__``), so a spec that
exists is a spec that makes sense; malformed wire payloads surface as
:class:`repro.errors.SpecError` -- mapped to an ``invalid_spec``
envelope by the service protocol.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SpecError

#: Wire discriminators of the concrete forms, in registration order.
SPEC_KINDS = ("truth_table", "multi_output", "affine_xor", "lookup_table")


def _check_n(name: str, value: int, upper: int = 4) -> None:
    if not isinstance(value, int) or isinstance(value, bool):
        raise SpecError(f"{name} must be an integer, got {value!r}")
    if not 1 <= value <= upper:
        raise SpecError(f"{name} must be in 1..{upper}, got {value}")


def _check_rows(rows, n_rows: int, limit: int, what: str) -> None:
    if len(rows) != n_rows:
        raise SpecError(f"{what} needs {n_rows} rows, got {len(rows)}")
    for row, value in enumerate(rows):
        if value is None:
            continue
        if not isinstance(value, int) or isinstance(value, bool):
            raise SpecError(
                f"{what} row {row} must be an integer or None, got {value!r}"
            )
        if not 0 <= value < limit:
            raise SpecError(
                f"{what} row {row} value {value} out of range 0..{limit - 1}"
            )


@dataclass(frozen=True)
class MultiOutputSpec:
    """An ``n_inputs``-variable, ``n_outputs``-bit Boolean function.

    Attributes:
        rows: Length-``2 ** n_inputs`` tuple; entry ``x`` is the output
            word (an int below ``2 ** n_outputs``) for input ``x``, or
            ``None`` for a don't-care row.
        n_inputs: Number of input variables (1..4).
        n_outputs: Number of output bits (1..4).
    """

    rows: tuple
    n_inputs: int
    n_outputs: int

    kind = "multi_output"

    def __post_init__(self):
        _check_n("n_inputs", self.n_inputs)
        _check_n("n_outputs", self.n_outputs)
        object.__setattr__(self, "rows", tuple(self.rows))
        _check_rows(
            self.rows, 1 << self.n_inputs, 1 << self.n_outputs,
            "multi-output spec",
        )
        if all(v is None for v in self.rows):
            raise SpecError("spec has no specified rows at all")

    def to_multi_output(self) -> "MultiOutputSpec":
        return self

    def specified_rows(self) -> "list[tuple[int, int]]":
        """``(input, output)`` pairs for every non-don't-care row."""
        return [(x, v) for x, v in enumerate(self.rows) if v is not None]

    def dont_care_count(self) -> int:
        return sum(1 for v in self.rows if v is None)

    def to_wire(self) -> dict:
        return {
            "kind": self.kind,
            "n_inputs": self.n_inputs,
            "n_outputs": self.n_outputs,
            "rows": list(self.rows),
        }


@dataclass(frozen=True)
class TruthTableSpec:
    """A single-output truth table with per-row don't-cares.

    Attributes:
        rows: Length-``2 ** n_inputs`` tuple of ``0``/``1``/``None``.
        n_inputs: Number of input variables (1..4).
    """

    rows: tuple
    n_inputs: int

    kind = "truth_table"

    def __post_init__(self):
        _check_n("n_inputs", self.n_inputs)
        object.__setattr__(self, "rows", tuple(self.rows))
        _check_rows(self.rows, 1 << self.n_inputs, 2, "truth table")
        if all(v is None for v in self.rows):
            raise SpecError("spec has no specified rows at all")

    def to_multi_output(self) -> MultiOutputSpec:
        return MultiOutputSpec(
            rows=self.rows, n_inputs=self.n_inputs, n_outputs=1
        )

    def dont_care_count(self) -> int:
        return sum(1 for v in self.rows if v is None)

    def to_wire(self) -> dict:
        return {
            "kind": self.kind,
            "n_inputs": self.n_inputs,
            "rows": list(self.rows),
        }


@dataclass(frozen=True)
class AffineXorForm:
    """An affine form over GF(2): ``y = A x XOR b``.

    Attributes:
        matrix: ``n_outputs`` rows of ``n_inputs`` entries, each 0/1;
            row ``j`` gives which inputs feed output bit ``j`` (bit 0 is
            the least significant input/output bit).
        constant: Length-``n_outputs`` tuple of 0/1 offsets.

    A *square invertible* matrix is itself a reversible linear map, so
    the embedding needs no ancilla and has zero don't-cares -- these
    compile with ``guarantee: optimal`` immediately.  Singular or
    rectangular forms normalize to a :class:`MultiOutputSpec` by
    evaluation and go through the don't-care embedding like any other
    irreversible function.
    """

    matrix: tuple
    constant: tuple

    kind = "affine_xor"

    def __post_init__(self):
        matrix = tuple(tuple(row) for row in self.matrix)
        constant = tuple(self.constant)
        object.__setattr__(self, "matrix", matrix)
        object.__setattr__(self, "constant", constant)
        if not matrix:
            raise SpecError("affine form needs at least one matrix row")
        widths = {len(row) for row in matrix}
        if len(widths) != 1:
            raise SpecError("affine matrix rows have inconsistent widths")
        _check_n("affine n_outputs", len(matrix))
        _check_n("affine n_inputs", next(iter(widths)))
        if len(constant) != len(matrix):
            raise SpecError(
                f"affine constant needs {len(matrix)} entries, "
                f"got {len(constant)}"
            )
        for what, bits in (("matrix", sum(matrix, ())), ("constant", constant)):
            for bit in bits:
                if bit not in (0, 1):
                    raise SpecError(
                        f"affine {what} entries must be 0/1, got {bit!r}"
                    )

    @property
    def n_inputs(self) -> int:
        return len(self.matrix[0])

    @property
    def n_outputs(self) -> int:
        return len(self.matrix)

    def evaluate(self, x: int) -> int:
        """The output word ``A x XOR b`` for the input word ``x``."""
        word = 0
        for j, row in enumerate(self.matrix):
            acc = self.constant[j]
            for i, coeff in enumerate(row):
                acc ^= coeff & (x >> i)
            word |= (acc & 1) << j
        return word

    def is_invertible(self) -> bool:
        """GF(2) invertibility of the (square) matrix; False when
        rectangular."""
        if self.n_inputs != self.n_outputs:
            return False
        # Gaussian elimination on rows packed as ints.
        rows = [
            sum(bit << i for i, bit in enumerate(row)) for row in self.matrix
        ]
        rank = 0
        for col in range(self.n_inputs):
            pivot = next(
                (r for r in range(rank, len(rows)) if rows[r] >> col & 1),
                None,
            )
            if pivot is None:
                return False
            rows[rank], rows[pivot] = rows[pivot], rows[rank]
            for r in range(len(rows)):
                if r != rank and rows[r] >> col & 1:
                    rows[r] ^= rows[rank]
            rank += 1
        return True

    def to_multi_output(self) -> MultiOutputSpec:
        return MultiOutputSpec(
            rows=tuple(
                self.evaluate(x) for x in range(1 << self.n_inputs)
            ),
            n_inputs=self.n_inputs,
            n_outputs=self.n_outputs,
        )

    def dont_care_count(self) -> int:
        return 0

    def to_wire(self) -> dict:
        return {
            "kind": self.kind,
            "matrix": [list(row) for row in self.matrix],
            "constant": list(self.constant),
        }


@dataclass(frozen=True)
class LookupTableSpec:
    """A fully-specified LUT: entry ``x`` is the output word for ``x``.

    The caller-facing shape of a k-LUT (as in FPGA tooling); it differs
    from :class:`MultiOutputSpec` only in refusing don't-cares, which
    makes it the natural target for "compile exactly this table".
    """

    table: tuple
    n_inputs: int
    n_outputs: int

    kind = "lookup_table"

    def __post_init__(self):
        _check_n("n_inputs", self.n_inputs)
        _check_n("n_outputs", self.n_outputs)
        object.__setattr__(self, "table", tuple(self.table))
        _check_rows(
            self.table, 1 << self.n_inputs, 1 << self.n_outputs,
            "lookup table",
        )
        if any(v is None for v in self.table):
            raise SpecError(
                "lookup tables are fully specified; use a truth-table or "
                "multi-output spec for don't-cares"
            )

    def to_multi_output(self) -> MultiOutputSpec:
        return MultiOutputSpec(
            rows=self.table, n_inputs=self.n_inputs, n_outputs=self.n_outputs
        )

    def dont_care_count(self) -> int:
        return 0

    def to_wire(self) -> dict:
        return {
            "kind": self.kind,
            "n_inputs": self.n_inputs,
            "n_outputs": self.n_outputs,
            "table": list(self.table),
        }


#: Any concrete spec form (for isinstance checks and type hints).
SpecForm = (TruthTableSpec, MultiOutputSpec, AffineXorForm, LookupTableSpec)


def spec_from_wire(payload) -> "TruthTableSpec | MultiOutputSpec | AffineXorForm | LookupTableSpec":
    """Decode a wire dict (the inverse of each form's ``to_wire``)."""
    if not isinstance(payload, dict):
        raise SpecError("spec payload must be a JSON object")
    kind = payload.get("kind")
    try:
        if kind == "truth_table":
            return TruthTableSpec(
                rows=tuple(payload["rows"]),
                n_inputs=payload["n_inputs"],
            )
        if kind == "multi_output":
            return MultiOutputSpec(
                rows=tuple(payload["rows"]),
                n_inputs=payload["n_inputs"],
                n_outputs=payload["n_outputs"],
            )
        if kind == "affine_xor":
            return AffineXorForm(
                matrix=tuple(tuple(row) for row in payload["matrix"]),
                constant=tuple(payload["constant"]),
            )
        if kind == "lookup_table":
            return LookupTableSpec(
                table=tuple(payload["table"]),
                n_inputs=payload["n_inputs"],
                n_outputs=payload["n_outputs"],
            )
    except KeyError as exc:
        raise SpecError(
            f"spec kind {kind!r} is missing required field {exc}"
        ) from exc
    except TypeError as exc:
        raise SpecError(f"malformed {kind!r} spec payload: {exc}") from exc
    raise SpecError(
        f"unknown spec kind {kind!r}; expected one of {', '.join(SPEC_KINDS)}"
    )


__all__ = [
    "SPEC_KINDS",
    "AffineXorForm",
    "LookupTableSpec",
    "MultiOutputSpec",
    "SpecForm",
    "TruthTableSpec",
    "spec_from_wire",
]
