"""Parse ``.pla``-style truth-table text into spec forms.

The subset understood is the cube-list core of Berkeley PLA format::

    .i 2
    .o 1
    00 0
    01 0
    10 0
    11 1
    .e

* ``.i N`` / ``.o M`` declare input/output counts (required, first).
* Each cube line is ``<inputs> <outputs>`` with bits *most significant
  first* (the usual PLA convention).  ``-`` in the input part expands
  the cube over both values of that variable; ``-`` anywhere in the
  output part marks the row a don't-care (the row-level granularity of
  :class:`repro.specs.ir.MultiOutputSpec`).
* Input rows never mentioned by any cube are don't-cares.
* ``#`` starts a comment; ``.e``/``.end`` ends the table; other dot
  directives (``.type``, ``.p``, ...) are ignored.

Conflicting cubes (two cubes assigning different outputs to one row)
are an error -- silent last-writer-wins would hide real spec bugs.
"""

from __future__ import annotations

from repro.errors import SpecError

from repro.specs.ir import MultiOutputSpec, TruthTableSpec


def parse_pla(text: str) -> "TruthTableSpec | MultiOutputSpec":
    """Parse PLA text; single-output tables come back as
    :class:`TruthTableSpec`, wider ones as :class:`MultiOutputSpec`."""
    n_inputs = None
    n_outputs = None
    rows: "list[int | None] | None" = None
    assigned: "set[int]" = set()
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("."):
            directive, *args = line.split()
            if directive in (".e", ".end"):
                break
            if directive == ".i":
                n_inputs = _directive_int(directive, args, lineno)
            elif directive == ".o":
                n_outputs = _directive_int(directive, args, lineno)
            # Other dot directives carry no truth-table content.
            continue
        if n_inputs is None or n_outputs is None:
            raise SpecError(
                f"line {lineno}: cube before .i/.o declarations"
            )
        if rows is None:
            rows = [None] * (1 << n_inputs)
        _apply_cube(line, n_inputs, n_outputs, rows, assigned, lineno)
    if n_inputs is None or n_outputs is None:
        raise SpecError("PLA text is missing .i/.o declarations")
    if rows is None or not assigned:
        raise SpecError("PLA text specifies no rows")
    if n_outputs == 1:
        return TruthTableSpec(rows=tuple(rows), n_inputs=n_inputs)
    return MultiOutputSpec(
        rows=tuple(rows), n_inputs=n_inputs, n_outputs=n_outputs
    )


def _directive_int(directive: str, args: "list[str]", lineno: int) -> int:
    if len(args) != 1 or not args[0].isdigit():
        raise SpecError(
            f"line {lineno}: {directive} needs one integer argument"
        )
    return int(args[0])


def _apply_cube(
    line: str,
    n_inputs: int,
    n_outputs: int,
    rows: "list[int | None]",
    assigned: "set[int]",
    lineno: int,
) -> None:
    parts = line.split()
    if len(parts) != 2:
        raise SpecError(
            f"line {lineno}: cube must be '<inputs> <outputs>', got {line!r}"
        )
    in_part, out_part = parts
    if len(in_part) != n_inputs:
        raise SpecError(
            f"line {lineno}: input part has {len(in_part)} bits, "
            f"expected {n_inputs}"
        )
    if len(out_part) != n_outputs:
        raise SpecError(
            f"line {lineno}: output part has {len(out_part)} bits, "
            f"expected {n_outputs}"
        )
    if any(c not in "01-" for c in in_part + out_part):
        raise SpecError(
            f"line {lineno}: cube characters must be 0, 1 or -, got {line!r}"
        )
    # Output bits are most significant first; '-' anywhere makes the
    # whole row a don't-care at this IR's row granularity.
    if "-" in out_part:
        value = None
    else:
        value = int(out_part, 2)
    for assignment in _expand_inputs(in_part):
        if assignment in assigned and rows[assignment] != value:
            raise SpecError(
                f"line {lineno}: row {assignment} already assigned "
                f"{rows[assignment]!r}, cube gives {value!r}"
            )
        rows[assignment] = value
        assigned.add(assignment)


def _expand_inputs(in_part: str):
    """All row indices a cube covers.  Bit order: leftmost character is
    the most significant input variable."""
    free = [i for i, c in enumerate(in_part) if c == "-"]
    base = int(in_part.replace("-", "0"), 2)
    width = len(in_part)
    for mask in range(1 << len(free)):
        value = base
        for j, pos in enumerate(free):
            if mask >> j & 1:
                value |= 1 << (width - 1 - pos)
        yield value


__all__ = ["parse_pla"]
