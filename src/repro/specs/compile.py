"""``compile_spec``: a Boolean function form in, an optimal circuit out.

The pipeline behind the ``repro compile`` CLI and the daemon's
``compile`` op::

    spec form --(normalize)--> MultiOutputSpec / affine permutation
              --(embed)------> EmbeddingPlan (wires + PartialSpec)
              --(search)-----> best completion over the don't-cares
              --(engine)-----> circuit, via any repro.engines engine

Guarantee taxonomy (see ``docs/COMPILE.md``):

* ``optimal`` -- every consistent completion was sized exactly (the
  completion search was exhaustive) *and* the engine's answer for the
  winner is provably minimal.  The circuit is gate-minimal over all
  functions matching the spec.
* ``upper_bound`` -- the completion space was sampled, or the engine
  itself only guarantees a bound.  The circuit is correct on every
  specified row; its size may not be globally minimal.

Engines exposing the optimal synthesizer's fast surface (``database`` +
``size_or_bound`` on ``engine.impl``) get the full exhaustive/sampled
completion search of :func:`repro.synth.embedding.synthesize_partial`
-- sizing thousands of completions costs microseconds each against the
database.  Other engines (heuristic, SAT, race, ...) evaluate a small
deterministic candidate set instead: every completion when the space is
tiny, otherwise the structurally informed seeds (natural XOR extension,
lexicographic base).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.permutation import Permutation
from repro.engines import (
    GUARANTEE_OPTIMAL,
    GUARANTEE_UPPER_BOUND,
    METRIC_GATES,
    SynthesisRequest,
    SynthesisResult,
)
from repro.errors import SynthesisError
from repro.perf.trace import trace
from repro.synth.embedding import synthesize_partial

from repro.specs.embed import EmbeddingPlan, plan_embedding

#: Candidate-evaluation cap for engines without a database fast path.
GENERIC_CANDIDATE_CAP = 8


@dataclass(frozen=True)
class CompileResult:
    """The outcome of compiling one spec form.

    Attributes:
        spec: The compiled form (a :mod:`repro.specs.ir` dataclass).
        plan: The :class:`repro.specs.embed.EmbeddingPlan` used.
        permutation: The completion the circuit implements.
        engine: Registry name of the engine that synthesized it.
        size/circuit/depth/cost: The circuit and its metrics.
        guarantee: ``"optimal"`` or ``"upper_bound"`` (see module doc).
        exhaustive: Whether every consistent completion was sized.
        completions_tried: How many completions were evaluated.
        seconds: Wall time (excluded from :meth:`to_wire`).
    """

    spec: object
    plan: EmbeddingPlan
    permutation: Permutation
    engine: str
    size: int
    circuit: str
    depth: "int | None"
    cost: "int | None"
    guarantee: str
    exhaustive: bool
    completions_tried: int
    seconds: float

    def output_of(self, assignment: int) -> int:
        """Re-simulate: the function value the circuit computes for an
        input assignment, read back in the caller's terms."""
        x = 0
        for i, wire in enumerate(self.plan.input_wires):
            x |= ((assignment >> i) & 1) << wire
        for wire, value in self.plan.constant_wires:
            x |= value << wire
        y = self.permutation(x)
        return sum(
            ((y >> wire) & 1) << j
            for j, wire in enumerate(self.plan.output_wires)
        )

    def to_wire(self) -> dict:
        """Deterministic JSON-ready body: what the daemon sends, byte
        for byte (under sorted-keys encoding)."""
        embedding = self.plan.to_wire()
        embedding["spec"] = self.permutation.spec()
        embedding["word"] = f"{self.permutation.word:#x}"
        embedding["exhaustive"] = self.exhaustive
        embedding["completions_tried"] = self.completions_tried
        return {
            "kind": self.spec.kind,
            "engine": self.engine,
            "size": self.size,
            "circuit": self.circuit,
            "guarantee": self.guarantee,
            "metric": METRIC_GATES,
            "depth": self.depth,
            "cost": self.cost,
            "embedding": embedding,
        }


def compile_spec(
    spec,
    engine,
    *,
    n_wires: int = 4,
    samples: int = 200,
    exhaustive_limit: int = 5040,
    seed: int = 5489,
    cancel=None,
) -> CompileResult:
    """Compile a function form to a circuit through ``engine``.

    Args:
        spec: Any :mod:`repro.specs.ir` form.
        engine: A prepared :class:`repro.engines.api.Engine`.
        n_wires: Circuit width to embed into (1..4).
        samples: Sampled-regime budget for the completion search.
        exhaustive_limit: Largest ``t!`` enumerated exhaustively.
        seed: Seed for the sampled regime (deterministic).
        cancel: Optional cooperative checkpoint called between
            completion evaluations (raises to abort -- the daemon
            passes a :class:`repro.service.tasks.CancelToken`'s).

    Raises:
        SpecError: The spec cannot be embedded into ``n_wires``.
        SynthesisError: No evaluated completion was within reach.
    """
    started = time.perf_counter()
    with trace("compile.embed", kind=spec.kind):
        plan = plan_embedding(spec, n_wires)
    impl = getattr(engine, "impl", None)
    if (
        impl is not None
        and getattr(impl, "database", None) is not None
        and hasattr(impl, "size_or_bound")
    ):
        result = _compile_with_database(
            spec, plan, engine, impl,
            samples=samples, exhaustive_limit=exhaustive_limit, seed=seed,
            cancel=cancel, started=started,
        )
    else:
        result = _compile_generic(
            spec, plan, engine, cancel=cancel, started=started,
        )
    if not plan.partial.matches(result.permutation):
        raise SynthesisError(
            "compiled circuit contradicts the spec on a specified row"
        )  # pragma: no cover - guarded by construction
    return result


def _compile_with_database(
    spec, plan, engine, impl, *, samples, exhaustive_limit, seed,
    cancel, started,
) -> CompileResult:
    """The full completion search against a warm database."""
    with trace("compile.search", kind=spec.kind):
        emb = synthesize_partial(
            plan.partial,
            impl,
            exhaustive_limit=exhaustive_limit,
            samples=samples,
            seed=seed,
            extra_candidates=list(plan.extras),
            cancel=cancel,
        )
    # The engine's own guarantee bounds the claim: a database-backed
    # engine that is not provably minimal (none today) would cap this
    # at upper_bound too.
    engine_optimal = engine.capabilities.guarantee == GUARANTEE_OPTIMAL
    guarantee = (
        GUARANTEE_OPTIMAL
        if emb.exhaustive and engine_optimal
        else GUARANTEE_UPPER_BOUND
    )
    shaped = SynthesisResult.from_circuit(
        engine.name,
        emb.circuit,
        emb.permutation.spec(),
        guarantee=guarantee,
        seconds=0.0,
    )
    return CompileResult(
        spec=spec,
        plan=plan,
        permutation=emb.permutation,
        engine=engine.name,
        size=emb.size,
        circuit=shaped.circuit,
        depth=shaped.depth,
        cost=shaped.cost,
        guarantee=guarantee,
        exhaustive=emb.exhaustive,
        completions_tried=emb.completions_tried,
        seconds=time.perf_counter() - started,
    )


def _generic_candidates(plan) -> "tuple[list[Permutation], bool]":
    """Candidates for engines with no cheap size oracle.

    Returns ``(candidates, full)`` -- ``full`` True when the list
    covers every consistent completion.
    """
    partial = plan.partial
    if partial.n_completions() <= GENERIC_CANDIDATE_CAP:
        return list(partial.completions()), True
    base = partial.complete(list(partial.free_outputs))
    seen: set = set()
    candidates = []
    for perm in list(plan.extras) + [base]:
        if perm.word not in seen:
            seen.add(perm.word)
            candidates.append(perm)
    return candidates, False


def _compile_generic(spec, plan, engine, *, cancel, started) -> CompileResult:
    """Evaluate a capped candidate set through an arbitrary engine."""
    candidates, full = _generic_candidates(plan)
    best: "SynthesisResult | None" = None
    best_perm: "Permutation | None" = None
    tried = 0
    failures = 0
    last_error: "SynthesisError | None" = None
    all_exact = True
    with trace("compile.search", kind=spec.kind, engine=engine.name):
        for perm in candidates:
            if cancel is not None:
                cancel()
            tried += 1
            options = {"cancel": cancel} if cancel is not None else {}
            try:
                result = engine.synthesize(SynthesisRequest(
                    spec=perm, n_wires=plan.n_wires, options=options,
                ))
            except SynthesisError as exc:
                failures += 1
                last_error = exc
                continue
            if result.guarantee != GUARANTEE_OPTIMAL:
                all_exact = False
            if best is None or result.size < best.size:
                best, best_perm = result, perm
    if best is None or best_perm is None:
        raise last_error if last_error is not None else SynthesisError(
            "no completion candidate could be synthesized"
        )
    guarantee = (
        GUARANTEE_OPTIMAL
        if full and failures == 0 and all_exact
        else GUARANTEE_UPPER_BOUND
    )
    return CompileResult(
        spec=spec,
        plan=plan,
        permutation=best_perm,
        engine=engine.name,
        size=best.size,
        circuit=best.circuit,
        depth=best.depth,
        cost=best.cost,
        guarantee=guarantee,
        exhaustive=full and failures == 0,
        completions_tried=tried,
        seconds=time.perf_counter() - started,
    )


__all__ = ["GENERIC_CANDIDATE_CAP", "CompileResult", "compile_spec"]
