"""repro.specs -- compile Boolean function forms to optimal circuits.

The function-form front-end: callers hold truth tables with don't-cares
(:class:`TruthTableSpec`), multi-output functions
(:class:`MultiOutputSpec`), affine/XOR forms (:class:`AffineXorForm`),
and lookup tables (:class:`LookupTableSpec`) -- not ready-made 4-bit
permutations.  :func:`compile_spec` normalizes any of them, chooses an
embedding into a reversible permutation (:func:`plan_embedding`),
searches the don't-care completions, synthesizes through any
:mod:`repro.engines` engine, and reports cost, guarantee, and the
embedding map back in the caller's terms::

    from repro.engines import create_engine
    from repro.specs import TruthTableSpec, compile_spec

    spec = TruthTableSpec(rows=(0, 0, 0, 1), n_inputs=2)  # AND
    result = compile_spec(spec, create_engine("optimal", k=5).prepare())
    print(result.size, result.circuit, result.guarantee)

The same pipeline serves the daemon's ``compile`` protocol op and the
``repro compile`` CLI subcommand -- see ``docs/COMPILE.md``.
"""

from repro.specs.compile import CompileResult, compile_spec
from repro.specs.embed import EmbeddingPlan, plan_embedding, routing_word
from repro.specs.ir import (
    SPEC_KINDS,
    AffineXorForm,
    LookupTableSpec,
    MultiOutputSpec,
    SpecForm,
    TruthTableSpec,
    spec_from_wire,
)
from repro.specs.pla import parse_pla

__all__ = [
    "SPEC_KINDS",
    "AffineXorForm",
    "CompileResult",
    "EmbeddingPlan",
    "LookupTableSpec",
    "MultiOutputSpec",
    "SpecForm",
    "TruthTableSpec",
    "compile_spec",
    "parse_pla",
    "plan_embedding",
    "routing_word",
    "spec_from_wire",
]
