"""Choose wires and embed a function form into a reversible permutation.

This is the bridge between the caller's vocabulary (inputs, outputs,
constants, garbage) and the synthesizer's (a partially-specified
permutation of ``2 ** n_wires`` codes).  The construction generalizes
:func:`repro.synth.embedding.embed_boolean_function` to multi-output
functions and per-row don't-cares:

* Inputs ride wires ``0 .. n_inputs - 1``; any higher input wire is
  held at the constant 0.
* Output bits ride the top ``n_outputs`` wires.
* Wires below the outputs carry garbage.  When capacity allows
  (``n_inputs + n_outputs <= n_wires``) the inputs pass through on
  their own wires, which keeps the specified rows injective for free;
  otherwise each specified row takes the lexicographically first unused
  garbage code consistent with its output bits.
* Rows whose constant wires are not at 0, and rows the caller marked
  don't-care, stay unconstrained -- the completion search over the
  resulting :class:`repro.synth.embedding.PartialSpec` is where the
  optimizer earns its keep.

The garbage codes of specified rows are pinned *deterministically*
(not searched): this keeps the embedding a pure function of the spec,
which is what lets a shard router and a daemon agree on a routing key
before any search has run -- see :func:`routing_word`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.permutation import Permutation
from repro.errors import SpecError
from repro.synth.embedding import PartialSpec, natural_reversible_extension

from repro.specs.ir import AffineXorForm, MultiOutputSpec


@dataclass(frozen=True)
class EmbeddingPlan:
    """A chosen line assignment plus the partial spec it induces.

    Attributes:
        partial: The permutation-level specification (don't-cares for
            every unconstrained row).
        n_wires: Total circuit width.
        input_wires: Wires carrying the caller's input variables.
        output_wires: Wires carrying the caller's output bits, least
            significant first.
        constant_wires: ``(wire, value)`` pairs the caller must feed as
            constants (sorted by wire).
        garbage_wires: Output-side wires whose final value is not part
            of the caller's function (inputs may pass through on them).
        extras: Structurally informed completions (e.g. the natural
            XOR extension) seeded ahead of the random search.
    """

    partial: PartialSpec
    n_wires: int
    input_wires: tuple
    output_wires: tuple
    constant_wires: tuple
    garbage_wires: tuple
    extras: tuple

    def to_wire(self) -> dict:
        """The embedding map in the caller's terms (JSON-ready,
        deterministic; completion-independent)."""
        return {
            "n_wires": self.n_wires,
            "input_wires": list(self.input_wires),
            "output_wires": list(self.output_wires),
            "constant_wires": [list(pair) for pair in self.constant_wires],
            "garbage_wires": list(self.garbage_wires),
            "dont_care_rows": len(self.partial.free_inputs),
            "completions": self.partial.n_completions(),
        }


def plan_embedding(spec, n_wires: int = 4) -> EmbeddingPlan:
    """The deterministic embedding plan for any spec form.

    Square invertible affine forms short-circuit to a fully-specified
    permutation (no ancilla, no garbage, zero don't-cares); everything
    else normalizes to a :class:`repro.specs.ir.MultiOutputSpec` and
    goes through the garbage-code construction above.
    """
    if not 1 <= n_wires <= 4:
        raise SpecError(f"n_wires must be in 1..4, got {n_wires}")
    if isinstance(spec, AffineXorForm) and spec.is_invertible():
        return _plan_affine(spec, n_wires)
    return _plan_multi_output(spec.to_multi_output(), n_wires)


def _plan_affine(spec: AffineXorForm, n_wires: int) -> EmbeddingPlan:
    """A reversible affine map: outputs replace inputs in place, higher
    wires pass through untouched."""
    m = spec.n_inputs
    if m > n_wires:
        raise SpecError(
            f"affine form on {m} bits does not fit {n_wires} wires"
        )
    low_mask = (1 << m) - 1
    values = [
        spec.evaluate(x & low_mask) | (x & ~low_mask & ((1 << n_wires) - 1))
        for x in range(1 << n_wires)
    ]
    partial = PartialSpec(outputs=tuple(values), n_wires=n_wires)
    return EmbeddingPlan(
        partial=partial,
        n_wires=n_wires,
        input_wires=tuple(range(m)),
        output_wires=tuple(range(m)),
        constant_wires=(),
        garbage_wires=(),
        extras=(),
    )


def _plan_multi_output(spec: MultiOutputSpec, n_wires: int) -> EmbeddingPlan:
    n_in, n_out = spec.n_inputs, spec.n_outputs
    if n_in > n_wires:
        raise SpecError(
            f"{n_in}-input function does not fit {n_wires} wires"
        )
    if n_out > n_wires:
        raise SpecError(
            f"{n_out}-output function does not fit {n_wires} wires"
        )
    specified = spec.specified_rows()
    garbage_bits = n_wires - n_out
    capacity = 1 << garbage_bits
    per_value: dict = {}
    for _x, value in specified:
        per_value[value] = per_value.get(value, 0) + 1
        if per_value[value] > capacity:
            raise SpecError(
                f"output value {value} repeats {per_value[value]} times but "
                f"only {capacity} garbage codes exist on {n_wires} wires; "
                "the function needs more wires"
            )
    out_shift = garbage_bits
    pass_through = n_in + n_out <= n_wires
    outputs: list = [None] * (1 << n_wires)
    used: set = set()
    for assignment, value in specified:
        # Constant input wires are at 0, so the full input word is the
        # assignment itself.
        if pass_through:
            candidates = (
                assignment | (garbage << n_in) | (value << out_shift)
                for garbage in range(1 << (n_wires - n_in - n_out))
            )
        else:
            candidates = (
                code | (value << out_shift) for code in range(capacity)
            )
        for y in candidates:
            if y not in used:
                outputs[assignment] = y
                used.add(y)
                break
        else:  # pragma: no cover - excluded by the capacity check above
            raise SpecError("embedding ran out of output codes")
    partial = PartialSpec(outputs=tuple(outputs), n_wires=n_wires)
    extras = []
    if pass_through and n_in < n_wires:
        natural = _natural_extension(spec, n_wires)
        if partial.matches(natural):
            extras.append(natural)
    return EmbeddingPlan(
        partial=partial,
        n_wires=n_wires,
        input_wires=tuple(range(n_in)),
        output_wires=tuple(range(out_shift, n_wires)),
        constant_wires=tuple((w, 0) for w in range(n_in, n_wires)),
        garbage_wires=tuple(range(out_shift)),
        extras=tuple(extras),
    )


def _natural_extension(spec: MultiOutputSpec, n_wires: int) -> Permutation:
    """The XOR completion ``y = x XOR (F(x_low) << out_shift)``.

    A bijection whenever the output wires are disjoint from the input
    wires (the pass-through regime); don't-care rows evaluate F as 0.
    Single-output specs reduce exactly to
    :func:`repro.synth.embedding.natural_reversible_extension`.
    """
    out_shift = n_wires - spec.n_outputs
    if spec.n_outputs == 1:
        table = [v if v is not None else 0 for v in spec.rows]
        return natural_reversible_extension(table, spec.n_inputs, n_wires)
    low_mask = (1 << spec.n_inputs) - 1
    values = []
    for x in range(1 << n_wires):
        value = spec.rows[x & low_mask]
        values.append(x ^ ((value if value is not None else 0) << out_shift))
    return Permutation.from_values(values)


def routing_word(spec, n_wires: int = 4) -> int:
    """The deterministic base completion's packed word, for routing.

    A shard router must pick an owner *before* any completion search
    runs, and a daemon answering the forwarded request must be able to
    verify the same key; both therefore derive it from the plan's
    lexicographically first completion (free rows filled with the free
    outputs in ascending order) -- a pure function of the spec.  Route
    by ``canonical(routing_word(spec), n_wires)``.
    """
    plan = plan_embedding(spec, n_wires)
    base = plan.partial.complete(list(plan.partial.free_outputs))
    return base.word


__all__ = ["EmbeddingPlan", "plan_embedding", "routing_word"]
