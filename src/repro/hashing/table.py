"""Open-addressing linear-probing hash table for packed permutations.

The paper stores canonical representatives in "a linear probing hash
table with Thomas Wang's hash function" and reports its parameters in
Table 2 (size, memory usage, load factor, average and maximal chain
length).  This module implements that exact structure on numpy arrays:
a power-of-two slot array of ``uint64`` keys plus a parallel array of
small integer values (circuit sizes in the synthesis database).

The all-ones word is used as the empty-slot sentinel; it can never encode
a valid permutation (its nibbles repeat), so no key escaping is needed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

from repro.errors import DatabaseError
from repro.hashing.wang import hash64shift, hash64shift_np

EMPTY = np.uint64(0xFFFF_FFFF_FFFF_FFFF)

U64Array = npt.NDArray[np.uint64]
U8Array = npt.NDArray[np.uint8]


def probe_lookup_batch(
    table_keys: U64Array,
    table_values: U8Array,
    keys: npt.ArrayLike,
    missing_value: int,
) -> U8Array:
    """Vectorized linear-probe lookup over raw slot arrays.

    Shared by the in-RAM :class:`LinearProbingTable` and the read-only
    memory-mapped table in :mod:`repro.store`: both lay out slots
    identically (Wang-hashed home slot, +1 wraparound probing, all-ones
    empty sentinel), so one implementation guarantees byte-identical
    results across the two storage back ends.
    """
    keys = np.asarray(keys, dtype=np.uint64)
    result = np.full(keys.shape[0], missing_value, dtype=np.uint8)
    if keys.shape[0] == 0:
        return result
    mask = np.uint64(table_keys.shape[0] - 1)
    pos = hash64shift_np(keys) & mask
    pending = np.arange(keys.shape[0])
    while pending.size:
        slots = pos[pending]
        slot_keys = table_keys[slots]
        found = slot_keys == keys[pending]
        empty = slot_keys == EMPTY
        found_idx = pending[found]
        result[found_idx] = table_values[slots[found]]
        pending = pending[~(found | empty)]
        pos[pending] = (pos[pending] + np.uint64(1)) & mask
    return result


def probe_get(
    table_keys: U64Array,
    table_values: U8Array,
    key: int,
    default: "int | None" = None,
) -> "int | None":
    """Scalar linear-probe lookup over raw slot arrays (see
    :func:`probe_lookup_batch` for the sharing rationale)."""
    mask = table_keys.shape[0] - 1
    pos = hash64shift(int(key)) & mask
    key_u = np.uint64(key)
    while True:
        slot_key = table_keys[pos]
        if slot_key == EMPTY:
            return default
        if slot_key == key_u:
            return int(table_values[pos])
        pos = (pos + 1) & mask


def stats_from_slots(table_keys: U64Array, value_bytes: "int | None" = None) -> "TableStats":
    """Table 2-style occupancy statistics from a raw slot-key array.

    ``value_bytes`` overrides the memory accounting for back ends whose
    value array is not 1 byte per slot (the default assumes the standard
    uint64-key + uint8-value layout).
    """
    capacity = int(table_keys.shape[0])
    occupied = table_keys != EMPTY
    count = int(occupied.sum())
    memory = table_keys.shape[0] * 8 + (
        value_bytes if value_bytes is not None else table_keys.shape[0]
    )
    if count == 0:
        return TableStats(capacity, 0, 0.0, memory, 0.0, 0, 0.0, 0)
    mask = np.uint64(capacity - 1)
    slots = np.nonzero(occupied)[0].astype(np.uint64)
    homes = hash64shift_np(np.asarray(table_keys[occupied])) & mask
    probe = ((slots - homes) & mask).astype(np.int64) + 1
    # Cluster lengths: runs of consecutive occupied slots (cyclically).
    lengths = _run_lengths_cyclic(occupied)
    return TableStats(
        capacity=capacity,
        count=count,
        load_factor=count / capacity,
        memory_bytes=memory,
        average_probe_length=float(probe.mean()),
        maximal_probe_length=int(probe.max()),
        average_cluster_length=float(lengths.mean()) if lengths.size else 0.0,
        maximal_cluster_length=int(lengths.max()) if lengths.size else 0,
    )


@dataclass(frozen=True)
class TableStats:
    """Occupancy statistics in the format of the paper's Table 2."""

    capacity: int
    count: int
    load_factor: float
    memory_bytes: int
    average_probe_length: float
    maximal_probe_length: int
    average_cluster_length: float
    maximal_cluster_length: int

    def format_rows(self) -> list[str]:
        """Rows matching Table 2's row labels."""
        return [
            f"Size                  {self.capacity}",
            f"Memory Usage          {self.memory_bytes / (1 << 20):.1f} MB",
            f"Load Factor           {self.load_factor:.2f}",
            f"Average Chain Length  {self.average_cluster_length:.2f}",
            f"Maximal Chain Length  {self.maximal_cluster_length}",
        ]


class LinearProbingTable:
    """Fixed-capacity (auto-growing) linear-probing map ``uint64 -> uint8``.

    Args:
        capacity_bits: log2 of the initial slot count.
        missing_value: value returned by lookups for absent keys; must not
            be used as a stored value.
        max_load_factor: the table doubles when occupancy would exceed this.
    """

    def __init__(
        self,
        capacity_bits: int = 16,
        missing_value: int = 255,
        max_load_factor: float = 0.85,
    ) -> None:
        if not 4 <= capacity_bits <= 34:
            raise DatabaseError(f"capacity_bits out of range: {capacity_bits}")
        self._capacity_bits = capacity_bits
        self._keys = np.full(1 << capacity_bits, EMPTY, dtype=np.uint64)
        self._values = np.zeros(1 << capacity_bits, dtype=np.uint8)
        self._count = 0
        self.missing_value = missing_value
        self.max_load_factor = max_load_factor

    # ------------------------------------------------------------------
    # Capacity management
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        """Current number of slots."""
        return self._keys.shape[0]

    def __len__(self) -> int:
        return self._count

    @property
    def load_factor(self) -> float:
        """Fraction of occupied slots."""
        return self._count / self.capacity

    def _grow(self, target_bits: "int | None" = None) -> None:
        old_keys, old_values = self._keys, self._values
        self._capacity_bits = target_bits or (self._capacity_bits + 1)
        self._keys = np.full(1 << self._capacity_bits, EMPTY, dtype=np.uint64)
        self._values = np.zeros(1 << self._capacity_bits, dtype=np.uint8)
        self._count = 0
        occupied = old_keys != EMPTY
        self.insert_batch(old_keys[occupied], old_values[occupied])

    def reserve(self, expected_count: int) -> None:
        """Grow (in one jump) until ``expected_count`` fits under the
        load-factor cap."""
        target_bits = self._capacity_bits
        while expected_count > self.max_load_factor * (1 << target_bits):
            target_bits += 1
        if target_bits > self._capacity_bits:
            self._grow(target_bits)

    # ------------------------------------------------------------------
    # Scalar operations
    # ------------------------------------------------------------------
    def insert(self, key: int, value: int) -> bool:
        """Insert one entry; returns False when the key was already present
        (the stored value is left unchanged)."""
        if self._count + 1 > self.max_load_factor * self.capacity:
            self._grow()
        mask = self.capacity - 1
        pos = hash64shift(int(key)) & mask
        key_u = np.uint64(key)
        keys = self._keys
        while True:
            slot_key = keys[pos]
            if slot_key == EMPTY:
                keys[pos] = key_u
                self._values[pos] = value
                self._count += 1
                return True
            if slot_key == key_u:
                return False
            pos = (pos + 1) & mask

    def get(self, key: int, default: "int | None" = None) -> "int | None":
        """Value stored for ``key``, or ``default`` when absent."""
        return probe_get(self._keys, self._values, key, default)

    def __contains__(self, key: int) -> bool:
        return self.get(key) is not None

    # ------------------------------------------------------------------
    # Batched operations
    # ------------------------------------------------------------------
    def insert_batch(self, keys: npt.ArrayLike, values: npt.ArrayLike) -> int:
        """Insert many entries; returns the number actually added.

        Duplicate keys (within the batch or vs. the table) keep their
        first-seen value, mirroring the scalar :meth:`insert` semantics.
        Large batches take a fully vectorized path: each probing round
        lets every pending key inspect its slot, claims empty slots
        (np.unique breaks same-slot races deterministically in favour of
        the earliest batch element), and advances the rest by one.
        """
        keys = np.asarray(keys, dtype=np.uint64)
        values = np.broadcast_to(
            np.asarray(values, dtype=np.uint8), keys.shape
        )
        if keys.shape[0] == 0:
            return 0
        if keys.shape[0] < 256:
            self.reserve(self._count + keys.shape[0])
            added = 0
            for key, value in zip(keys.tolist(), values.tolist()):
                if self.insert(key, value):
                    added += 1
            return added
        # Deduplicate within the batch, keeping the first occurrence.
        unique_keys, first_index = np.unique(keys, return_index=True)
        order = np.argsort(first_index)
        unique_keys = unique_keys[order]
        unique_values = values[first_index[order]]
        # Drop keys already present.
        fresh = ~self.contains_batch(unique_keys)
        unique_keys = unique_keys[fresh]
        unique_values = unique_values[fresh]
        if unique_keys.shape[0] == 0:
            return 0
        self.reserve(self._count + unique_keys.shape[0])
        mask = np.uint64(self.capacity - 1)
        table_keys = self._keys
        table_values = self._values
        pos = hash64shift_np(unique_keys) & mask
        pending = np.arange(unique_keys.shape[0])
        while pending.size:
            slots = pos[pending]
            empty = table_keys[slots] == EMPTY
            claimants = pending[empty]
            if claimants.size:
                claim_slots = slots[empty]
                # One winner per contested slot: the earliest batch element
                # (pending is in batch order, np.unique keeps the first).
                _, winner_rows = np.unique(claim_slots, return_index=True)
                winners = claimants[winner_rows]
                table_keys[pos[winners]] = unique_keys[winners]
                table_values[pos[winners]] = unique_values[winners]
                self._count += winners.shape[0]
                is_winner = np.zeros(unique_keys.shape[0], dtype=bool)
                is_winner[winners] = True
                pending = pending[~is_winner[pending]]
            pos[pending] = (pos[pending] + np.uint64(1)) & mask
        return int(unique_keys.shape[0])

    def lookup_batch(self, keys: npt.ArrayLike) -> U8Array:
        """Vectorized lookup; absent keys map to ``missing_value``."""
        return probe_lookup_batch(
            self._keys, self._values, keys, self.missing_value
        )

    def contains_batch(self, keys: npt.ArrayLike) -> npt.NDArray[np.bool_]:
        """Boolean membership mask for many keys at once."""
        return self.lookup_batch(keys) != self.missing_value

    # ------------------------------------------------------------------
    # Introspection / persistence
    # ------------------------------------------------------------------
    def keys(self) -> U64Array:
        """Array of all stored keys (unordered)."""
        return self._keys[self._keys != EMPTY].copy()

    def items(self) -> tuple[U64Array, U8Array]:
        """Arrays of stored (keys, values), aligned."""
        occupied = self._keys != EMPTY
        return self._keys[occupied].copy(), self._values[occupied].copy()

    def stats(self) -> TableStats:
        """Occupancy statistics (Table 2 of the paper)."""
        return stats_from_slots(self._keys, value_bytes=self._values.nbytes)

    @property
    def capacity_bits(self) -> int:
        """log2 of the slot count (the on-disk store records this)."""
        return self._capacity_bits

    def slot_arrays(self) -> tuple[U64Array, U8Array]:
        """The raw (keys, values) slot arrays, including empty slots.

        This is the exact probing layout; :mod:`repro.store` serializes
        it verbatim so a memory-mapped table probes identically.  The
        returned arrays are live views -- callers must not mutate them.
        """
        return self._keys, self._values

    def save_arrays(self) -> "dict[str, npt.NDArray[np.generic]]":
        """Dense (key, value) arrays for persistence."""
        keys, values = self.items()
        arrays: "dict[str, npt.NDArray[np.generic]]" = {
            "keys": keys,
            "values": values,
        }
        return arrays

    @staticmethod
    def from_arrays(
        keys: npt.ArrayLike, values: npt.ArrayLike, headroom: float = 1.6
    ) -> "LinearProbingTable":
        """Rebuild a table sized for ``len(keys)`` entries."""
        keys = np.asarray(keys, dtype=np.uint64)
        needed = max(16, int(keys.shape[0] * headroom))
        bits = max(4, int(needed - 1).bit_length())
        table = LinearProbingTable(capacity_bits=bits)
        table.insert_batch(keys, values)
        return table


def _run_lengths_cyclic(occupied: npt.NDArray[np.bool_]) -> npt.NDArray[np.int64]:
    """Lengths of maximal runs of True values in a cyclic boolean array."""
    if occupied.all():
        return np.array([occupied.shape[0]], dtype=np.int64)
    if not occupied.any():
        return np.array([], dtype=np.int64)
    # Rotate so the array starts at an empty slot; runs are then acyclic.
    first_empty = int(np.argmin(occupied))  # argmin finds the first False
    rolled = np.roll(occupied, -first_empty)
    changes = np.flatnonzero(np.diff(rolled.astype(np.int8)))
    starts = changes[::2] + 1
    ends = changes[1::2] + 1
    if rolled[-1]:
        ends = np.append(ends, rolled.shape[0])
    return (ends - starts).astype(np.int64)
