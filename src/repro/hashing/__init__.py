"""Hashing substrate: Thomas Wang's 64-bit mix and a linear-probing table."""

from repro.hashing.table import LinearProbingTable, TableStats
from repro.hashing.wang import hash64shift, hash64shift_np

__all__ = ["LinearProbingTable", "TableStats", "hash64shift", "hash64shift_np"]
