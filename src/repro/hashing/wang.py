"""Thomas Wang's 64-bit integer hash (``hash64shift``), paper Section 3.3.

The paper uses this mix function to key its linear-probing hash table of
canonical representatives: "it is fast to compute and distributes the
permutations uniformly over the hash table."  We port it faithfully; the
original uses 64-bit two's-complement arithmetic with one signed left
shift chain and three unsigned right shifts, all of which reduce to
arithmetic modulo 2**64.
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

MASK64 = (1 << 64) - 1


def hash64shift(key: int) -> int:
    """Scalar reference implementation (operates modulo 2**64)."""
    key &= MASK64
    key = ((~key & MASK64) + (key << 21)) & MASK64
    key ^= key >> 24
    key = (key + (key << 3) + (key << 8)) & MASK64
    key ^= key >> 14
    key = (key + (key << 2) + (key << 4)) & MASK64
    key ^= key >> 28
    key = (key + (key << 31)) & MASK64
    return key


def hash64shift_np(keys: npt.NDArray[np.uint64]) -> npt.NDArray[np.uint64]:
    """Vectorized ``hash64shift`` on a ``uint64`` array."""
    u = np.uint64
    keys = keys.astype(np.uint64, copy=True)
    keys = (~keys) + (keys << u(21))
    keys ^= keys >> u(24)
    keys = keys + (keys << u(3)) + (keys << u(8))
    keys ^= keys >> u(14)
    keys = keys + (keys << u(2)) + (keys << u(4))
    keys ^= keys >> u(28)
    keys = keys + (keys << u(31))
    return keys
