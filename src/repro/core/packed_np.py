"""Numpy-vectorized packed-word arithmetic.

Mirrors :mod:`repro.core.packed` on ``uint64`` arrays.  These routines are
the workhorses of the breadth-first search (Algorithm 2) and the
meet-in-the-middle search (Algorithm 1): a single call processes millions
of packed permutations with a few dozen whole-array passes.

All functions accept and return ``numpy.ndarray`` of dtype ``uint64``;
scalars may be passed as plain Python ints where noted.
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

from repro.core import packed
from repro.core.combinatorics import plain_changes

_U = np.uint64
NIBBLE_MASK = _U(0xF)

#: Alias for the array type every routine here consumes and produces.
U64Array = npt.NDArray[np.uint64]


def as_words(values: npt.ArrayLike) -> U64Array:
    """Coerce a sequence of packed words to a ``uint64`` array."""
    return np.asarray(values, dtype=np.uint64)


def compose_np(p: npt.ArrayLike, q: npt.ArrayLike, n_wires: int) -> U64Array:
    """Vectorized composition: result(x) = q(p(x)) (apply p, then q).

    ``p`` and ``q`` may each be an array or a scalar word; standard numpy
    broadcasting applies (at least one of them should be an array).
    """
    size = packed.num_states(n_wires)
    p = np.asarray(p, dtype=np.uint64)
    q = np.asarray(q, dtype=np.uint64)
    r = np.zeros(np.broadcast(p, q).shape, dtype=np.uint64)
    for i in range(size):
        v = (p >> _U(4 * i)) & NIBBLE_MASK
        r |= ((q >> (v << _U(2))) & NIBBLE_MASK) << _U(4 * i)
    return r


def inverse_np(p: npt.ArrayLike, n_wires: int) -> U64Array:
    """Vectorized inverse permutation."""
    size = packed.num_states(n_wires)
    p = np.asarray(p, dtype=np.uint64)
    q = np.zeros(p.shape, dtype=np.uint64)
    for i in range(size):
        v = (p >> _U(4 * i)) & NIBBLE_MASK
        q |= _U(i) << (v << _U(2))
    return q


class _NpSwapMasks:
    """uint64 copies of the adjacent-swap mask sets for one wire count."""

    def __init__(self, n_wires: int) -> None:
        masks = packed.adjacent_swap_masks(n_wires)
        self.index_masks = [
            (_U(keep), _U(up), _U(down), _U(shift))
            for keep, up, down, shift in masks.index_masks
        ]
        self.value_masks = [
            (_U(keep), _U(lo), _U(hi)) for keep, lo, hi in masks.value_masks
        ]


_NP_MASK_CACHE: dict[int, _NpSwapMasks] = {}


def _np_masks(n_wires: int) -> _NpSwapMasks:
    masks = _NP_MASK_CACHE.get(n_wires)
    if masks is None:
        masks = _NpSwapMasks(n_wires)
        _NP_MASK_CACHE[n_wires] = masks
    return masks


def conjugate_adjacent_np(words: U64Array, pair: int, n_wires: int) -> U64Array:
    """Vectorized conjugation by the wire transposition ``(pair, pair+1)``."""
    masks = _np_masks(n_wires)
    keep, up, down, shift = masks.index_masks[pair]
    words = (words & keep) | ((words & up) << shift) | ((words & down) >> shift)
    keep, bit_lo, bit_hi = masks.value_masks[pair]
    return (words & keep) | ((words & bit_lo) << _U(1)) | ((words & bit_hi) >> _U(1))


_SCHEDULE_CACHE: dict[int, list[int]] = {}


def _conjugation_schedule(n_wires: int) -> list[int]:
    """Plain-changes swap schedule reused for every canonicalization call."""
    sched = _SCHEDULE_CACHE.get(n_wires)
    if sched is None:
        sched = plain_changes(n_wires)
        _SCHEDULE_CACHE[n_wires] = sched
    return sched


def _fold_conjugates_min(words: U64Array, n_wires: int, best: U64Array) -> None:
    """Fold ``min`` over all conjugates of ``words`` into ``best`` in place."""
    np.minimum(best, words, out=best)
    cur = words.copy()
    for pair in _conjugation_schedule(n_wires):
        cur = conjugate_adjacent_np(cur, pair, n_wires)
        np.minimum(best, cur, out=best)


def canonical_np(words: npt.ArrayLike, n_wires: int) -> U64Array:
    """Canonical representative of the equivalence class of each word.

    The representative is the numerically smallest packed word among the
    up-to-48 equivalents (24 wire-relabeling conjugates of ``f`` and 24 of
    ``f⁻¹``), exactly as in Section 3.2 of the paper.
    """
    words = np.asarray(words, dtype=np.uint64)
    best = words.copy()
    _fold_conjugates_min(words, n_wires, best)
    _fold_conjugates_min(inverse_np(words, n_wires), n_wires, best)
    return best


def canonical_conjugation_only_np(
    words: npt.ArrayLike, n_wires: int
) -> U64Array:
    """Canonical representative under wire relabeling only (no inversion).

    Used by variants of the search that must distinguish a class from the
    class of its inverse (e.g. cost models that are not reversal-symmetric).
    """
    words = np.asarray(words, dtype=np.uint64)
    best = words.copy()
    _fold_conjugates_min(words, n_wires, best)
    return best


def all_variants_np(words: npt.ArrayLike, n_wires: int) -> U64Array:
    """Matrix of all equivalence-class members, shape ``(2 * n!, len(words))``.

    Row 0 is ``words`` itself; rows may repeat when the class is smaller
    than ``2 * n!`` (symmetric functions).
    """
    words = np.asarray(words, dtype=np.uint64)
    sched = _conjugation_schedule(n_wires)
    n_conj = len(sched) + 1
    out = np.empty((2 * n_conj, words.shape[0]), dtype=np.uint64)
    cur = words.copy()
    out[0] = cur
    for row, pair in enumerate(sched, start=1):
        cur = conjugate_adjacent_np(cur, pair, n_wires)
        out[row] = cur
    cur = inverse_np(words, n_wires)
    out[n_conj] = cur
    for row, pair in enumerate(sched, start=n_conj + 1):
        cur = conjugate_adjacent_np(cur, pair, n_wires)
        out[row] = cur
    return out


def class_sizes_np(
    words: npt.ArrayLike, n_wires: int, chunk: int = 1 << 18
) -> npt.NDArray[np.int64]:
    """Number of distinct functions in the equivalence class of each word.

    Vectorized: builds the ``(2 * n!, chunk)`` variant matrix and counts
    distinct entries per column.  The sum of class sizes over all canonical
    representatives of one size is the "Functions" column of Table 4.
    """
    words = np.asarray(words, dtype=np.uint64)
    sizes = np.empty(words.shape[0], dtype=np.int64)
    for start in range(0, words.shape[0], chunk):
        block = words[start : start + chunk]
        variants = all_variants_np(block, n_wires)
        variants.sort(axis=0)
        distinct = (np.diff(variants, axis=0) != 0).sum(axis=0) + 1
        sizes[start : start + block.shape[0]] = distinct
    return sizes


def expand_classes_np(
    reps: npt.ArrayLike, n_wires: int, chunk: int = 1 << 18
) -> U64Array:
    """All distinct members of the classes of ``reps``, sorted, deduplicated.

    Used to materialize the lists ``A_i`` of *all* functions of a given
    size from the stored canonical representatives (Algorithm 1 needs
    sequential access to every function of size ``i``).
    """
    reps = np.asarray(reps, dtype=np.uint64)
    pieces: list[U64Array] = []
    for start in range(0, reps.shape[0], chunk):
        block = reps[start : start + chunk]
        variants = all_variants_np(block, n_wires).reshape(-1)
        pieces.append(np.unique(variants))
    if not pieces:
        return np.empty(0, dtype=np.uint64)
    return np.unique(np.concatenate(pieces))


def is_valid_np(words: npt.ArrayLike, n_wires: int) -> npt.NDArray[np.bool_]:
    """Boolean mask of words that encode valid permutations."""
    size = packed.num_states(n_wires)
    words = np.asarray(words, dtype=np.uint64)
    seen = np.zeros(words.shape, dtype=np.uint64)
    ok = np.ones(words.shape, dtype=bool)
    if size < 16:
        ok &= (words >> _U(4 * size)) == 0
    for i in range(size):
        v = (words >> _U(4 * i)) & NIBBLE_MASK
        ok &= v < size
        seen |= _U(1) << v
    ok &= seen == _U((1 << size) - 1)
    return ok
