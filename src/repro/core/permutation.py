"""User-facing :class:`Permutation` wrapper around packed words.

The packed-word modules are deliberately low-level (plain ints and numpy
arrays).  ``Permutation`` gives library users a safe, hashable value type
with the vocabulary of the paper: composition, inversion, conjugation by
wire relabelings, canonical representatives, and linearity tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core import equivalence, packed, spec as spec_mod
from repro.errors import InvalidPermutationError


@dataclass(frozen=True)
class Permutation:
    """An n-bit reversible function (2 <= n <= 4) as an immutable value.

    Attributes:
        word: Packed 64-bit encoding (nibble ``i`` holds ``f(i)``).
        n_wires: Number of wires/bits.
    """

    word: int
    n_wires: int

    def __post_init__(self) -> None:
        if not packed.is_valid(self.word, self.n_wires):
            raise InvalidPermutationError(
                f"word {self.word:#x} is not a valid {self.n_wires}-wire "
                "packed permutation"
            )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def identity(n_wires: int) -> "Permutation":
        """The identity function on ``n_wires`` wires."""
        return Permutation(packed.identity(n_wires), n_wires)

    @staticmethod
    def from_values(values: Iterable[int]) -> "Permutation":
        """Build from an output sequence, e.g. ``[0, 2, 1, 3]``."""
        word, n_wires = spec_mod.spec_to_word(values)
        return Permutation(word, n_wires)

    @staticmethod
    def from_spec(text: str) -> "Permutation":
        """Build from the paper's bracketed spec string."""
        return Permutation.from_values(spec_mod.parse_spec(text))

    @staticmethod
    def from_word(word: int, n_wires: int) -> "Permutation":
        """Build from a packed word (validated)."""
        return Permutation(word, n_wires)

    @staticmethod
    def coerce(
        value: "Permutation | str | int | Iterable[int]",
        n_wires: "int | None" = None,
    ) -> "Permutation":
        """Accept a Permutation, spec string, value sequence, or packed word."""
        if isinstance(value, Permutation):
            return value
        if isinstance(value, str):
            return Permutation.from_spec(value)
        if isinstance(value, int):
            if n_wires is None:
                raise InvalidPermutationError(
                    "n_wires is required to interpret a packed word"
                )
            return Permutation(value, n_wires)
        return Permutation.from_values(list(value))

    @staticmethod
    def random(n_wires: int, rng: packed.Shuffler) -> "Permutation":
        """Uniformly random permutation using ``rng.shuffle``."""
        return Permutation(packed.random_word(n_wires, rng), n_wires)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def values(self) -> tuple[int, ...]:
        """The output sequence ``f(0), ..., f(2**n - 1)``."""
        return packed.unpack(self.word, self.n_wires)

    @property
    def size_of_domain(self) -> int:
        """Number of basis states, ``2**n_wires``."""
        return packed.num_states(self.n_wires)

    def spec(self) -> str:
        """The paper's bracketed spec string."""
        return spec_mod.format_spec(self.values)

    def cycles(self) -> list[tuple[int, ...]]:
        """Disjoint cycle decomposition (fixed points omitted)."""
        return spec_mod.cycles(list(self.values))

    def parity(self) -> int:
        """0 for an even permutation, 1 for odd."""
        return spec_mod.parity(list(self.values))

    def fixed_points(self) -> list[int]:
        """Inputs mapped to themselves."""
        return [x for x, y in enumerate(self.values) if x == y]

    def __call__(self, x: int) -> int:
        """Evaluate ``f(x)``."""
        if not 0 <= x < self.size_of_domain:
            raise InvalidPermutationError(
                f"input {x} out of range for {self.n_wires} wires"
            )
        return packed.get(self.word, x)

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def then(self, other: "Permutation") -> "Permutation":
        """Sequential composition: apply ``self`` first, then ``other``."""
        self._check_same_width(other)
        return Permutation(
            packed.compose(self.word, other.word, self.n_wires), self.n_wires
        )

    def compose_after(self, other: "Permutation") -> "Permutation":
        """Mathematical composition ``self ∘ other`` (other acts first)."""
        return other.then(self)

    def inverse(self) -> "Permutation":
        """The inverse function."""
        return Permutation(packed.inverse(self.word, self.n_wires), self.n_wires)

    def is_identity(self) -> bool:
        """True iff this is the identity function."""
        return self.word == packed.identity(self.n_wires)

    def order(self) -> int:
        """Smallest positive ``m`` with ``f^m = identity``."""
        import math

        result = 1
        for cycle in self.cycles():
            result = math.lcm(result, len(cycle))
        return result

    def conjugate(self, wire_perm: tuple[int, ...]) -> "Permutation":
        """Conjugation by a simultaneous input/output relabeling."""
        return Permutation(
            packed.conjugate_by_wire_perm(self.word, tuple(wire_perm), self.n_wires),
            self.n_wires,
        )

    # ------------------------------------------------------------------
    # Equivalence (paper Section 3.2)
    # ------------------------------------------------------------------
    def canonical(self) -> "Permutation":
        """Canonical representative of the equivalence class."""
        return Permutation(
            equivalence.canonical(self.word, self.n_wires), self.n_wires
        )

    def is_canonical(self) -> bool:
        """True iff this function is its own canonical representative."""
        return equivalence.is_canonical(self.word, self.n_wires)

    def equivalence_class(self) -> list["Permutation"]:
        """All functions equivalent to this one (sorted by packed word)."""
        members = sorted(equivalence.equivalence_class(self.word, self.n_wires))
        return [Permutation(w, self.n_wires) for w in members]

    def class_size(self) -> int:
        """Size of the equivalence class (at most ``2 * n!``)."""
        return equivalence.class_size(self.word, self.n_wires)

    # ------------------------------------------------------------------
    # Structure tests
    # ------------------------------------------------------------------
    def is_linear(self) -> bool:
        """True iff computable by CNOT gates alone (f(0) = 0 and f is
        GF(2)-linear)."""
        from repro.synth.gf2 import is_linear_permutation

        return is_linear_permutation(self)

    def is_affine(self) -> bool:
        """True iff computable by NOT and CNOT gates alone.

        This is the class the paper calls "linear reversible functions"
        in Section 4.3 (322,560 functions for n = 4).
        """
        from repro.synth.gf2 import is_affine_permutation

        return is_affine_permutation(self)

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _check_same_width(self, other: "Permutation") -> None:
        if other.n_wires != self.n_wires:
            raise InvalidPermutationError(
                f"width mismatch: {self.n_wires} vs {other.n_wires} wires"
            )

    def __str__(self) -> str:
        return self.spec()

    def __repr__(self) -> str:
        return f"Permutation({self.spec()}, n_wires={self.n_wires})"
