"""Small bit-manipulation helpers shared across the library.

These are deliberately tiny, dependency-free functions.  The packed
permutation arithmetic in :mod:`repro.core.packed` builds on them.
"""

from __future__ import annotations

MASK64 = (1 << 64) - 1


def popcount(x: int) -> int:
    """Number of set bits in a non-negative integer."""
    return bin(x).count("1")


def bit(x: int, i: int) -> int:
    """Bit ``i`` of ``x`` (0 or 1)."""
    return (x >> i) & 1


def set_bit(x: int, i: int, value: int) -> int:
    """Return ``x`` with bit ``i`` forced to ``value`` (0 or 1)."""
    if value:
        return x | (1 << i)
    return x & ~(1 << i)


def flip_bit(x: int, i: int) -> int:
    """Return ``x`` with bit ``i`` toggled."""
    return x ^ (1 << i)


def swap_bits(x: int, i: int, j: int) -> int:
    """Return ``x`` with bits ``i`` and ``j`` exchanged."""
    bi = (x >> i) & 1
    bj = (x >> j) & 1
    if bi == bj:
        return x
    return x ^ ((1 << i) | (1 << j))


def permute_bits(x: int, wire_perm: tuple[int, ...]) -> int:
    """Permute the low ``len(wire_perm)`` bits of ``x``.

    Bit ``i`` of the input becomes bit ``wire_perm[i]`` of the output.
    Bits above ``len(wire_perm)`` must be zero.
    """
    out = 0
    for i, target in enumerate(wire_perm):
        out |= ((x >> i) & 1) << target
    return out


def mask64(x: int) -> int:
    """Truncate a Python integer to 64 bits (two's-complement wraparound)."""
    return x & MASK64
