"""Core data model: packed permutations, gates, circuits, symmetries."""

from repro.core.circuit import Circuit
from repro.core.gates import CNOT, NOT, TOF, TOF4, Gate, all_gates
from repro.core.permutation import Permutation

__all__ = [
    "Circuit",
    "Gate",
    "Permutation",
    "NOT",
    "CNOT",
    "TOF",
    "TOF4",
    "all_gates",
]
