"""Parsing and formatting of reversible-function specifications.

The paper specifies functions as output sequences, e.g. ``hwb4`` is
``[0,2,4,12,8,5,9,11,1,6,10,13,3,14,7,15]``: input ``i`` maps to the
``i``-th listed value.  This module converts between that notation,
truth tables, cycle notation, and the packed-word representation.
"""

from __future__ import annotations

import re
from typing import Iterable

from repro.core import packed
from repro.errors import InvalidPermutationError

_INT_RE = re.compile(r"-?\d+")


def parse_spec(text: str) -> list[int]:
    """Parse a bracketed (or bare) comma/space-separated value list.

    >>> parse_spec("[0, 2, 1, 3]")
    [0, 2, 1, 3]
    >>> parse_spec("3 1 2 0")
    [3, 1, 2, 0]
    """
    values = [int(m.group()) for m in _INT_RE.finditer(text)]
    if not values:
        raise InvalidPermutationError(f"no values found in spec: {text!r}")
    validate_spec(values)
    return values


def validate_spec(values: list[int]) -> int:
    """Check that ``values`` is a permutation of ``range(2**n)``; return n."""
    size = len(values)
    n_wires = size.bit_length() - 1
    if size != 1 << n_wires or n_wires < 1:
        raise InvalidPermutationError(
            f"spec length must be a power of two >= 2, got {size}"
        )
    if sorted(values) != list(range(size)):
        raise InvalidPermutationError(
            f"spec is not a permutation of 0..{size - 1}: {values!r}"
        )
    return n_wires


def format_spec(values: Iterable[int]) -> str:
    """Format a value sequence in the paper's bracketed style."""
    return "[" + ",".join(str(v) for v in values) + "]"


def spec_to_word(values: Iterable[int]) -> tuple[int, int]:
    """Pack a spec; returns ``(word, n_wires)``."""
    values = list(values)
    n_wires = validate_spec(values)
    return packed.pack(values), n_wires


def word_to_spec(word: int, n_wires: int) -> list[int]:
    """Unpack a word into a value list."""
    return list(packed.unpack(word, n_wires))


def cycles(values: Iterable[int]) -> list[tuple[int, ...]]:
    """Disjoint cycle decomposition (fixed points omitted).

    >>> cycles([1, 0, 2, 3])
    [(0, 1)]
    """
    values = list(values)
    validate_spec(values)
    seen = [False] * len(values)
    out: list[tuple[int, ...]] = []
    for start in range(len(values)):
        if seen[start] or values[start] == start:
            seen[start] = True
            continue
        cycle = [start]
        seen[start] = True
        current = values[start]
        while current != start:
            cycle.append(current)
            seen[current] = True
            current = values[current]
        out.append(tuple(cycle))
    return out


def parity(values: Iterable[int]) -> int:
    """Permutation parity: 0 for even, 1 for odd.

    NOT, CNOT and TOF are even permutations of the 16 basis states while
    TOF4 is odd (a single transposition), so the parity of a function
    equals the parity of the TOF4 count of any circuit implementing it.
    """
    return sum(len(c) - 1 for c in cycles(values)) % 2


def truth_table_lines(
    values: Iterable[int], n_wires: "int | None" = None
) -> list[str]:
    """Human-readable truth table, one ``inputs -> outputs`` row per line.

    Bit order within a row is ``a b c d`` (wire 0 first).
    """
    values = list(values)
    inferred = validate_spec(values)
    if n_wires is None:
        n_wires = inferred
    lines: list[str] = []
    for x, y in enumerate(values):
        in_bits = " ".join(str((x >> w) & 1) for w in range(n_wires))
        out_bits = " ".join(str((y >> w) & 1) for w in range(n_wires))
        lines.append(f"{in_bits} -> {out_bits}")
    return lines
