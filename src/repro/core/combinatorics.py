"""Combinatorial utilities: plain changes, permutation helpers.

The symmetry reduction of the paper (Section 3.2) enumerates all ``n!``
simultaneous input/output relabelings of a circuit.  Because every
permutation of wires is a product of *adjacent* transpositions, the whole
orbit can be traversed by repeatedly conjugating with adjacent wire swaps.
The Steinhaus--Johnson--Trotter ("plain changes") order visits every
permutation of ``n`` elements exactly once, moving between consecutive
permutations by a single adjacent transposition -- exactly the walk the
paper performs with its ``conjugate01``-style routines (46 conjugations for
``n = 4``; see Section 3.3).
"""

from __future__ import annotations

import math
from collections.abc import Iterator


def factorial(n: int) -> int:
    """``n!`` for non-negative ``n``."""
    return math.factorial(n)


def plain_changes(n: int) -> list[int]:
    """Return the Steinhaus--Johnson--Trotter swap schedule for ``n`` items.

    The result is a list of ``n! - 1`` positions; swapping the (pos, pos+1)
    pair of an arrangement, in sequence, visits all ``n!`` arrangements of
    ``n`` items starting from the identity, each exactly once.

    >>> plain_changes(3)
    [1, 0, 1, 0, 1]
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    # Johnson-Trotter with explicit directions. Values 0..n-1; direction
    # -1 means "looking left".
    perm = list(range(n))
    direction = [-1] * n
    swaps: list[int] = []
    while True:
        # Find the largest mobile element.
        mobile_value = -1
        mobile_pos = -1
        for pos, value in enumerate(perm):
            neighbor = pos + direction[value]
            if 0 <= neighbor < n and perm[neighbor] < value and value > mobile_value:
                mobile_value = value
                mobile_pos = pos
        if mobile_value < 0:
            break
        swap_pos = min(mobile_pos, mobile_pos + direction[mobile_value])
        swaps.append(swap_pos)
        perm[swap_pos], perm[swap_pos + 1] = perm[swap_pos + 1], perm[swap_pos]
        # Reverse direction of all elements larger than the mobile one.
        for value in range(mobile_value + 1, n):
            direction[value] = -direction[value]
    if len(swaps) != factorial(n) - 1:
        raise AssertionError("plain changes schedule has wrong length")
    return swaps


def arrangements_in_plain_changes_order(n: int) -> list[tuple[int, ...]]:
    """All ``n!`` arrangements, in the order plain_changes visits them."""
    perm = list(range(n))
    result = [tuple(perm)]
    for pos in plain_changes(n):
        perm[pos], perm[pos + 1] = perm[pos + 1], perm[pos]
        result.append(tuple(perm))
    return result


def all_permutations(n: int) -> Iterator[tuple[int, ...]]:
    """All permutations of ``range(n)`` in lexicographic order."""
    import itertools

    return itertools.permutations(range(n))


def compose_perms(p: tuple[int, ...], q: tuple[int, ...]) -> tuple[int, ...]:
    """Composition ``q after p`` on tuples: result[i] = q[p[i]]."""
    return tuple(q[p[i]] for i in range(len(p)))


def invert_perm(p: tuple[int, ...]) -> tuple[int, ...]:
    """Inverse of a permutation given as a tuple."""
    out = [0] * len(p)
    for i, v in enumerate(p):
        out[v] = i
    return tuple(out)
