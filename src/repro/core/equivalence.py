"""Equivalence classes of reversible functions (paper Section 3.2).

Two functions are *equivalent* when one can be obtained from the other by

* simultaneous relabeling of inputs and outputs (conjugation by one of the
  ``n!`` wire permutations), and/or
* inversion (reversing the circuit).

Equivalent functions have the same optimal circuit size, so the search
only ever stores one *canonical representative* per class -- the
numerically smallest packed word.  For ``n = 4`` this shrinks storage by a
factor of almost ``2 * 4! = 48``.

This module is the scalar reference implementation; the vectorized
counterpart lives in :mod:`repro.core.packed_np`.
"""

from __future__ import annotations

from repro.core import packed
from repro.core.combinatorics import (
    arrangements_in_plain_changes_order,
    plain_changes,
)
from repro.perf.trace import trace


def conjugates(word: int, n_wires: int) -> list[int]:
    """All ``n!`` conjugates of ``word`` (with repetitions for symmetric
    functions), visited by the plain-changes walk.

    The first element is ``word`` itself.
    """
    out = [word]
    cur = word
    for pair in plain_changes(n_wires):
        cur = packed.conjugate_adjacent(cur, pair, n_wires)
        out.append(cur)
    return out


def conjugates_with_wire_perms(
    word: int, n_wires: int
) -> list[tuple[int, tuple[int, ...]]]:
    """Pairs ``(conjugate, wire_permutation)`` for all ``n!`` relabelings.

    Each reported wire permutation satisfies
    ``packed.conjugate_by_wire_perm(word, perm, n_wires) == conjugate``:
    it is the inverse of the arrangement the plain-changes walk has
    reached (the walk permutes *positions*, which acts on labels
    contravariantly).
    """
    from repro.core.combinatorics import invert_perm

    conj = conjugates(word, n_wires)
    arrangements = arrangements_in_plain_changes_order(n_wires)
    return [
        (conjugate, invert_perm(arrangement))
        for conjugate, arrangement in zip(conj, arrangements)
    ]


def equivalence_class(word: int, n_wires: int) -> set[int]:
    """The set of all functions equivalent to ``word``."""
    members = set(conjugates(word, n_wires))
    members.update(conjugates(packed.inverse(word, n_wires), n_wires))
    return members


def canonical(word: int, n_wires: int) -> int:
    """Canonical (numerically smallest) representative of the class."""
    with trace("equivalence.canonical"):
        best = word
        cur = word
        schedule = plain_changes(n_wires)
        for pair in schedule:
            cur = packed.conjugate_adjacent(cur, pair, n_wires)
            if cur < best:
                best = cur
        cur = packed.inverse(word, n_wires)
        if cur < best:
            best = cur
        for pair in schedule:
            cur = packed.conjugate_adjacent(cur, pair, n_wires)
            if cur < best:
                best = cur
        return best


def is_canonical(word: int, n_wires: int) -> bool:
    """True iff ``word`` is the canonical representative of its class."""
    return canonical(word, n_wires) == word


def class_size(word: int, n_wires: int) -> int:
    """Number of distinct functions in the equivalence class of ``word``.

    At most ``2 * n!`` (48 for four wires); smaller for functions with
    relabeling symmetries or that equal a conjugate of their own inverse.
    """
    return len(equivalence_class(word, n_wires))


def find_conjugating_perm(
    source: int, target: int, n_wires: int
) -> "tuple[int, ...] | None":
    """A wire permutation taking ``source`` to ``target`` by conjugation,
    or ``None`` when the two are not conjugate.
    """
    for conj, wire_perm in conjugates_with_wire_perms(source, n_wires):
        if conj == target:
            return wire_perm
    return None
