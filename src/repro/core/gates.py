"""The NCT gate library: NOT, CNOT, Toffoli, Toffoli-4 (paper Section 2).

A gate is a multiple-control Toffoli: it flips its *target* wire exactly
when every *control* wire carries a 1.  The paper's four gate kinds are
the special cases with 0, 1, 2, and 3 controls:

* ``NOT(a)``          : a ↦ a ⊕ 1
* ``CNOT(a, b)``      : b ↦ b ⊕ a
* ``TOF(a, b, c)``    : c ↦ c ⊕ ab
* ``TOF4(a, b, c, d)``: d ↦ d ⊕ abc

Wires are numbered 0.. and printed with the paper's letters
``a, b, c, d`` (wire 0 = ``a`` = least significant bit of the basis-state
index; this convention is fixed by the paper's benchmark circuits, e.g.
``shift4``'s circuit realizes x ↦ x + 1 mod 16 only with ``a`` = LSB).

On four wires the library contains 4 + 12 + 12 + 4 = 32 gates; on three
wires, 3 + 6 + 3 = 12.  Every gate is an involution (self-inverse), and
the gate set is closed under wire relabeling -- the two facts the paper's
symmetry reduction relies on.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from itertools import combinations

from repro.core import packed
from repro.core.bitops import permute_bits
from repro.errors import InvalidGateError

WIRE_NAMES = "abcdefgh"

#: Printable gate-kind names indexed by number of controls.
KIND_NAMES = {0: "NOT", 1: "CNOT", 2: "TOF", 3: "TOF4"}

_GATE_RE = re.compile(r"^\s*([A-Za-z0-9]+)\s*\(\s*([a-z](?:\s*,\s*[a-z])*)\s*\)\s*$")


@dataclass(frozen=True, order=True)
class Gate:
    """A multiple-control Toffoli gate.

    Attributes:
        controls: Sorted tuple of control wire indices (possibly empty).
        target: Target wire index; must not be among the controls.
    """

    controls: tuple[int, ...]
    target: int

    def __post_init__(self) -> None:
        controls = tuple(sorted(self.controls))
        object.__setattr__(self, "controls", controls)
        if len(set(controls)) != len(controls):
            raise InvalidGateError(f"duplicate control wires: {controls}")
        if self.target in controls:
            raise InvalidGateError(
                f"target wire {self.target} is also a control: {controls}"
            )
        if self.target < 0 or any(c < 0 for c in controls):
            raise InvalidGateError("wire indices must be non-negative")

    @property
    def kind(self) -> str:
        """Gate-kind name: NOT, CNOT, TOF, TOF4, or MCTk for k > 3 controls."""
        n_controls = len(self.controls)
        return KIND_NAMES.get(n_controls, f"MCT{n_controls + 1}")

    @property
    def support(self) -> frozenset[int]:
        """Set of wires the gate touches (controls and target)."""
        return frozenset(self.controls) | {self.target}

    @property
    def control_mask(self) -> int:
        """Bitmask with a 1 on every control wire."""
        mask = 0
        for c in self.controls:
            mask |= 1 << c
        return mask

    def apply(self, state: int) -> int:
        """Apply the gate to a basis state (an integer bit vector)."""
        mask = self.control_mask
        if state & mask == mask:
            return state ^ (1 << self.target)
        return state

    def to_word(self, n_wires: int) -> int:
        """Packed-permutation encoding of the gate on ``n_wires`` wires."""
        if any(w >= n_wires for w in self.support):
            raise InvalidGateError(
                f"gate {self} does not fit on {n_wires} wires"
            )
        word = 0
        for x in range(packed.num_states(n_wires)):
            word |= self.apply(x) << (4 * x)
        return word

    def relabeled(self, wire_perm: tuple[int, ...]) -> "Gate":
        """The gate with every wire ``i`` renamed to ``wire_perm[i]``."""
        return Gate(
            controls=tuple(wire_perm[c] for c in self.controls),
            target=wire_perm[self.target],
        )

    def conjugated_state_map(self, x: int, wire_perm: tuple[int, ...]) -> int:
        """Apply the relabeled gate to state ``x`` (used in tests)."""
        inv = [0] * len(wire_perm)
        for i, v in enumerate(wire_perm):
            inv[v] = i
        y = permute_bits(x, tuple(inv))
        y = self.apply(y)
        return permute_bits(y, wire_perm)

    def __str__(self) -> str:
        wires = ",".join(WIRE_NAMES[w] for w in (*self.controls, self.target))
        return f"{self.kind}({wires})"

    @staticmethod
    def parse(text: str) -> "Gate":
        """Parse a gate in the paper's syntax, e.g. ``TOF(a,b,d)``.

        The last wire listed is the target; the rest are controls.  The
        kind name is validated against the control count.
        """
        match = _GATE_RE.match(text)
        if not match:
            raise InvalidGateError(f"cannot parse gate: {text!r}")
        kind, wire_text = match.group(1).upper(), match.group(2)
        wires = [WIRE_NAMES.index(w.strip()) for w in wire_text.split(",")]
        gate = Gate(controls=tuple(wires[:-1]), target=wires[-1])
        if kind not in (gate.kind, "T" + str(len(wires))):
            raise InvalidGateError(
                f"gate kind {kind!r} does not match {len(wires) - 1} controls"
            )
        return gate


def NOT(target: int) -> Gate:
    """The NOT gate on ``target``."""
    return Gate(controls=(), target=target)


def CNOT(control: int, target: int) -> Gate:
    """The CNOT gate: ``target ^= control``."""
    return Gate(controls=(control,), target=target)


def TOF(control1: int, control2: int, target: int) -> Gate:
    """The Toffoli gate: ``target ^= control1 & control2``."""
    return Gate(controls=(control1, control2), target=target)


def TOF4(control1: int, control2: int, control3: int, target: int) -> Gate:
    """The 4-bit Toffoli gate: ``target ^= control1 & control2 & control3``."""
    return Gate(controls=(control1, control2, control3), target=target)


def all_gates(n_wires: int, max_controls: "int | None" = None) -> list[Gate]:
    """The full NCT library on ``n_wires`` wires, in a fixed deterministic
    order (by control count, then target, then controls).

    ``max_controls`` restricts the library (e.g. ``max_controls=1`` gives
    the NOT/CNOT library of linear reversible circuits, Section 4.3).
    """
    if max_controls is None:
        max_controls = n_wires - 1
    gates: list[Gate] = []
    for n_controls in range(min(max_controls, n_wires - 1) + 1):
        for target in range(n_wires):
            others = [w for w in range(n_wires) if w != target]
            for controls in combinations(others, n_controls):
                gates.append(Gate(controls=controls, target=target))
    return gates


def gate_words(n_wires: int, max_controls: "int | None" = None) -> list[int]:
    """Packed permutations of :func:`all_gates`, same order."""
    return [g.to_word(n_wires) for g in all_gates(n_wires, max_controls)]


def linear_gates(n_wires: int) -> list[Gate]:
    """The NOT/CNOT sub-library that generates linear reversible circuits."""
    return all_gates(n_wires, max_controls=1)
