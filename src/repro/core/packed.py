"""Packed-word arithmetic for small reversible functions (paper Section 3.3).

An ``n``-bit reversible function (2 <= n <= 4) is a permutation of
``{0, ..., 2**n - 1}``.  Following the paper, we store it in a single
64-bit word, allocating one 4-bit nibble per value: nibble ``i`` (bits
``4*i .. 4*i + 3``) holds ``f(i)``.  For ``n = 4`` the word is fully used;
for ``n = 3`` only the low 32 bits are used, and for ``n = 2`` the low 16.

With this layout,

* composition of two functions costs a handful of shift/mask operations per
  nibble (the paper's ``composition`` routine, 94 machine instructions),
* inversion is a scatter of nibble indices (the paper's ``inverse``,
  59 instructions),
* conjugation by an adjacent wire transposition is straight-line mask
  arithmetic (the paper's ``conjugate01``, 14 instructions), and
* unsigned comparison of two packed words is a total order on functions
  (numeric order equals lexicographic order on the value sequence read
  from ``f(2**n - 1)`` down to ``f(0)``), which is all the canonical-
  representative computation needs.

Everything in this module is scalar pure Python and serves as the readable
reference implementation; :mod:`repro.core.packed_np` provides numpy-
vectorized equivalents used by the heavy searches.
"""

from __future__ import annotations

from typing import Protocol

from repro.errors import InvalidPermutationError

#: Number of bits used to store one function value (fixed by the layout).
NIBBLE_BITS = 4
NIBBLE_MASK = 0xF

#: Maximum supported wire count for the packed representation.
MAX_WIRES = 4

#: Sentinel that is not a valid packed permutation for any n (a valid word
#: never has all nibbles equal to 15 unless n=4, and for n=4 the word with
#: every nibble 15 repeats values, hence is invalid as well).
EMPTY_WORD = 0xFFFF_FFFF_FFFF_FFFF


def _check_wires(n_wires: int) -> None:
    if not 1 <= n_wires <= MAX_WIRES:
        raise InvalidPermutationError(
            f"packed representation supports 1..{MAX_WIRES} wires, got {n_wires}"
        )


def num_states(n_wires: int) -> int:
    """Number of basis states ``2**n`` on ``n_wires`` wires."""
    _check_wires(n_wires)
    return 1 << n_wires


def identity(n_wires: int) -> int:
    """Packed identity permutation on ``n_wires`` wires.

    >>> hex(identity(4))
    '0xfedcba9876543210'
    """
    _check_wires(n_wires)
    word = 0
    for i in range(num_states(n_wires)):
        word |= i << (NIBBLE_BITS * i)
    return word


def get(word: int, index: int) -> int:
    """Value ``f(index)`` stored in nibble ``index`` of ``word``."""
    return (word >> (NIBBLE_BITS * index)) & NIBBLE_MASK


def pack(values: "list[int] | tuple[int, ...]") -> int:
    """Pack a value sequence ``f(0), f(1), ...`` into a word.

    The sequence length must be a power of two between 2 and 16 and the
    values must form a permutation of ``range(len(values))``.
    """
    size = len(values)
    if size not in (2, 4, 8, 16):
        raise InvalidPermutationError(
            f"length must be 2, 4, 8 or 16 (a power of two), got {size}"
        )
    if sorted(values) != list(range(size)):
        raise InvalidPermutationError(
            f"values are not a permutation of 0..{size - 1}: {values!r}"
        )
    word = 0
    for i, v in enumerate(values):
        word |= v << (NIBBLE_BITS * i)
    return word


def unpack(word: int, n_wires: int) -> tuple[int, ...]:
    """Unpack a word into the value sequence ``f(0), ..., f(2**n - 1)``."""
    return tuple(get(word, i) for i in range(num_states(n_wires)))


def is_valid(word: int, n_wires: int) -> bool:
    """True iff ``word`` encodes a permutation of ``range(2**n_wires)``
    and all unused high bits are zero."""
    _check_wires(n_wires)
    size = num_states(n_wires)
    if word >> (NIBBLE_BITS * size):
        return False
    seen = 0
    for i in range(size):
        v = get(word, i)
        if v >= size:
            return False
        seen |= 1 << v
    return seen == (1 << size) - 1


def compose(p: int, q: int, n_wires: int) -> int:
    """Apply ``p`` first, then ``q``:  result(x) = q(p(x)).

    This matches the paper's ``composition(p, q)`` routine, whose first
    step computes ``r0 = q[p[0]]``.  In mathematical notation the result
    is the composition ``q ∘ p``.
    """
    size = num_states(n_wires)
    r = 0
    for i in range(size):
        r |= ((q >> (NIBBLE_BITS * get(p, i))) & NIBBLE_MASK) << (NIBBLE_BITS * i)
    return r


def compose4_paper(p: int, q: int) -> int:
    """Faithful port of the paper's straight-line ``composition`` for n = 4.

    Kept separate from :func:`compose` so tests can check the unrolled bit
    manipulation against the loop-based reference.
    """
    d = (p & 15) << 2
    r = (q >> d) & 15
    p >>= 2  # from now on the low nibble sits pre-multiplied by 4 in p & 60
    shift = 4
    for _ in range(15):
        d = p & 60
        r |= ((q >> d) & 15) << shift
        p >>= 4
        shift += 4
    return r


def inverse(p: int, n_wires: int) -> int:
    """Inverse permutation: result[p(x)] = x.

    Mirrors the paper's ``inverse`` routine generalized to any n <= 4.
    """
    size = num_states(n_wires)
    q = 0
    for i in range(size):
        q |= i << (NIBBLE_BITS * get(p, i))
    return q


def apply_word(p: int, x: int) -> int:
    """Evaluate the permutation at a point: ``f(x)``."""
    return get(p, x)


def _index_bitswap_masks(n_wires: int, lo: int) -> tuple[int, int, int, int]:
    """Masks for permuting nibble *positions* by swapping index bits
    ``lo`` and ``lo + 1``.

    Returns ``(keep, move_up, move_down, shift)`` such that::

        permuted = (w & keep) | ((w & move_up) << shift) | ((w & move_down) >> shift)

    ``move_up`` selects nibbles whose index has bit ``lo`` = 1 and bit
    ``lo+1`` = 0 (these move to the position with the bits exchanged,
    i.e. up by ``2**(lo+1) - 2**lo = 2**lo`` index steps).
    """
    size = num_states(n_wires)
    hi = lo + 1
    keep = move_up = move_down = 0
    for i in range(size):
        nib = NIBBLE_MASK << (NIBBLE_BITS * i)
        b_lo = (i >> lo) & 1
        b_hi = (i >> hi) & 1
        if b_lo == b_hi:
            keep |= nib
        elif b_lo == 1:  # b_hi == 0: moves up
            move_up |= nib
        else:  # b_lo == 0, b_hi == 1: moves down
            move_down |= nib
    shift = NIBBLE_BITS * ((1 << hi) - (1 << lo))
    return keep, move_up, move_down, shift


def _value_bitswap_masks(n_wires: int, lo: int) -> tuple[int, int, int]:
    """Masks for swapping bits ``lo`` and ``lo + 1`` inside every nibble.

    Returns ``(keep, bit_lo, bit_hi)`` such that::

        swapped = (w & keep) | ((w & bit_lo) << 1) | ((w & bit_hi) >> 1)
    """
    size = num_states(n_wires)
    hi = lo + 1
    keep = bit_lo = bit_hi = 0
    for i in range(size):
        base = NIBBLE_BITS * i
        for b in range(NIBBLE_BITS):
            if b == lo:
                bit_lo |= 1 << (base + b)
            elif b == hi:
                bit_hi |= 1 << (base + b)
            else:
                keep |= 1 << (base + b)
    return keep, bit_lo, bit_hi


class AdjacentSwapMasks:
    """Precomputed mask sets for conjugation by adjacent wire swaps.

    For ``n_wires`` wires there are ``n_wires - 1`` adjacent transpositions
    ``(0,1), (1,2), ...``; conjugating a packed function by one of them
    amounts to (a) permuting nibble positions by the index-bit swap and
    (b) swapping the same pair of bits inside every nibble -- exactly the
    structure of the paper's ``conjugate01``.
    """

    def __init__(self, n_wires: int) -> None:
        _check_wires(n_wires)
        self.n_wires = n_wires
        self.index_masks = [
            _index_bitswap_masks(n_wires, lo) for lo in range(n_wires - 1)
        ]
        self.value_masks = [
            _value_bitswap_masks(n_wires, lo) for lo in range(n_wires - 1)
        ]

    def conjugate(self, word: int, pair: int) -> int:
        """Conjugate ``word`` by the wire transposition ``(pair, pair+1)``."""
        keep, up, down, shift = self.index_masks[pair]
        # repro: allow[unmasked-op] up/down select nibbles whose shifted image stays inside the 64-bit word by construction
        word = (word & keep) | ((word & up) << shift) | ((word & down) >> shift)
        keep, bit_lo, bit_hi = self.value_masks[pair]
        # repro: allow[unmasked-op] bit_lo/bit_hi select value bits whose 1-bit shift stays inside each nibble by construction
        return (word & keep) | ((word & bit_lo) << 1) | ((word & bit_hi) >> 1)


_MASK_CACHE: dict[int, AdjacentSwapMasks] = {}


def adjacent_swap_masks(n_wires: int) -> AdjacentSwapMasks:
    """Shared, cached :class:`AdjacentSwapMasks` instance for ``n_wires``."""
    masks = _MASK_CACHE.get(n_wires)
    if masks is None:
        masks = AdjacentSwapMasks(n_wires)
        _MASK_CACHE[n_wires] = masks
    return masks


def conjugate_adjacent(word: int, pair: int, n_wires: int) -> int:
    """Conjugate by the adjacent wire transposition ``(pair, pair + 1)``."""
    return adjacent_swap_masks(n_wires).conjugate(word, pair)


def conjugate01_paper(p: int) -> int:
    """Faithful port of the paper's ``conjugate01`` (n = 4, wires 0 and 1)."""
    p = (
        (p & 0xF00F_F00F_F00F_F00F)
        | ((p & 0x00F0_00F0_00F0_00F0) << 4)
        | ((p & 0x0F00_0F00_0F00_0F00) >> 4)
    )
    return (
        (p & 0xCCCC_CCCC_CCCC_CCCC)
        | ((p & 0x1111_1111_1111_1111) << 1)
        | ((p & 0x2222_2222_2222_2222) >> 1)
    )


def conjugate_by_wire_perm(word: int, wire_perm: tuple[int, ...], n_wires: int) -> int:
    """Conjugate ``word`` by an arbitrary wire relabeling (slow reference).

    ``wire_perm[i]`` is the new label of wire ``i``.  The result is
    ``g⁻¹ ∘ f ∘ g`` where ``g`` maps basis state ``x`` to the state with
    bit ``i`` of ``x`` moved to position ``wire_perm[i]``.
    """
    from repro.core.bitops import permute_bits

    size = num_states(n_wires)
    values = [0] * size
    for x in range(size):
        gx = permute_bits(x, wire_perm)
        values[gx] = permute_bits(get(word, x), wire_perm)
    return pack(values)


class Shuffler(Protocol):
    """Anything exposing in-place ``shuffle`` (random.Random, samplers)."""

    def shuffle(self, values: list[int]) -> None: ...


def random_word(n_wires: int, rng: Shuffler) -> int:
    """Uniformly random packed permutation drawn from ``rng``.

    ``rng`` must expose ``shuffle(list)`` (e.g. :class:`random.Random` or
    :class:`repro.rng.sampling.PermutationSampler`).
    """
    values = list(range(num_states(n_wires)))
    rng.shuffle(values)
    return pack(values)
