"""Reversible circuits: strings of NCT gates (paper Section 2).

A reversible circuit is a sequence of gates applied left to right; there
is no fan-out and no feedback.  ``Circuit`` is an immutable value type
supporting simulation, composition, inversion, depth and cost evaluation,
and round-tripping through the paper's textual syntax
(``"NOT(a) CNOT(c,a) TOF(a,b,d)"``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.core import packed
from repro.core.gates import Gate
from repro.errors import InvalidCircuitError

if TYPE_CHECKING:
    from repro.core.permutation import Permutation


@dataclass(frozen=True)
class Circuit:
    """An immutable sequence of gates on ``n_wires`` wires.

    Gates are applied in list order: ``gates[0]`` acts first.  This matches
    the paper's circuit notation, where the leftmost gate of a drawing (or
    of a textual listing such as Table 6) is applied first.
    """

    gates: tuple[Gate, ...]
    n_wires: int

    def __post_init__(self) -> None:
        gates = tuple(self.gates)
        object.__setattr__(self, "gates", gates)
        if self.n_wires < 1:
            raise InvalidCircuitError(f"n_wires must be positive: {self.n_wires}")
        for gate in gates:
            if any(w >= self.n_wires for w in gate.support):
                raise InvalidCircuitError(
                    f"gate {gate} does not fit on {self.n_wires} wires"
                )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def empty(n_wires: int) -> "Circuit":
        """The identity circuit (no gates)."""
        return Circuit(gates=(), n_wires=n_wires)

    @staticmethod
    def from_gates(gates: Iterable[Gate], n_wires: int) -> "Circuit":
        """Build a circuit from any iterable of gates."""
        return Circuit(gates=tuple(gates), n_wires=n_wires)

    @staticmethod
    def parse(text: str, n_wires: int) -> "Circuit":
        """Parse whitespace-separated gates in the paper's syntax.

        >>> Circuit.parse("TOF(a,b,d) CNOT(a,b)", 4).gate_count
        2
        """
        text = text.strip()
        if not text:
            return Circuit.empty(n_wires)
        # Gates are separated by whitespace, but wire lists may contain
        # spaces after commas; normalize by splitting on ')' instead.
        chunks = [c.strip() for c in text.replace(")", ") ").split() if c.strip()]
        gates = tuple(Gate.parse(chunk) for chunk in chunks)
        return Circuit(gates=gates, n_wires=n_wires)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def gate_count(self) -> int:
        """Number of gates (the paper's primary cost metric)."""
        return len(self.gates)

    def __len__(self) -> int:
        return len(self.gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self.gates)

    def __getitem__(self, index: "int | slice") -> "Gate | Circuit":
        if isinstance(index, slice):
            return Circuit(gates=self.gates[index], n_wires=self.n_wires)
        return self.gates[index]

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------
    def apply(self, state: int) -> int:
        """Run the circuit on one basis state."""
        for gate in self.gates:
            state = gate.apply(state)
        return state

    def truth_table(self) -> list[int]:
        """Output state for every input state ``0 .. 2**n - 1``.

        Works for any wire count (unlike :meth:`to_word`, which is bound
        to the packed representation's 4-wire limit).
        """
        return [self.apply(x) for x in range(1 << self.n_wires)]

    def to_word(self) -> int:
        """Packed-permutation encoding of the whole circuit (n <= 4)."""
        word = packed.identity(self.n_wires)
        for gate in self.gates:
            word = packed.compose(word, gate.to_word(self.n_wires), self.n_wires)
        return word

    def implements(
        self, spec: "Permutation | str | int | Iterable[int]"
    ) -> bool:
        """True iff the circuit realizes ``spec``.

        ``spec`` may be a packed word, a value sequence, or a
        :class:`repro.core.permutation.Permutation`.
        """
        from repro.core.permutation import Permutation

        target = Permutation.coerce(spec, self.n_wires)
        return self.to_word() == target.word

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def then(self, other: "Circuit") -> "Circuit":
        """Concatenation: this circuit followed by ``other``."""
        if other.n_wires != self.n_wires:
            raise InvalidCircuitError(
                f"cannot concatenate circuits on {self.n_wires} and "
                f"{other.n_wires} wires"
            )
        return Circuit(gates=self.gates + other.gates, n_wires=self.n_wires)

    def __add__(self, other: "Circuit") -> "Circuit":
        return self.then(other)

    def inverse(self) -> "Circuit":
        """The reversed circuit, implementing the inverse function.

        NCT gates are involutions, so reversing the gate order suffices
        (paper Section 3.2, symmetry 2).
        """
        return Circuit(gates=tuple(reversed(self.gates)), n_wires=self.n_wires)

    def relabeled(self, wire_perm: tuple[int, ...]) -> "Circuit":
        """Simultaneously relabel inputs and outputs by ``wire_perm``.

        Implements the conjugation symmetry of paper Section 3.2: the new
        circuit realizes ``g_sigma^{-1} ∘ f ∘ g_sigma`` and has the same
        gate count.
        """
        if sorted(wire_perm) != list(range(self.n_wires)):
            raise InvalidCircuitError(f"bad wire permutation: {wire_perm}")
        return Circuit(
            gates=tuple(g.relabeled(tuple(wire_perm)) for g in self.gates),
            n_wires=self.n_wires,
        )

    def repeated(self, times: int) -> "Circuit":
        """The circuit concatenated with itself ``times`` times."""
        if times < 0:
            raise InvalidCircuitError("repetition count must be non-negative")
        return Circuit(gates=self.gates * times, n_wires=self.n_wires)

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def depth(self) -> int:
        """Circuit depth: number of layers of gates on disjoint wires.

        Gates sharing no wire may fire simultaneously; each gate is
        scheduled as early as possible.  (The paper's Section 5 discusses
        depth as an alternative optimization target.)
        """
        wire_ready = [0] * self.n_wires
        depth = 0
        for gate in self.gates:
            layer = 1 + max((wire_ready[w] for w in gate.support), default=0)
            for w in gate.support:
                wire_ready[w] = layer
            depth = max(depth, layer)
        return depth

    def cost(self, model: "dict[int, int] | None" = None) -> int:
        """Total circuit cost under a per-gate-kind cost model.

        ``model`` maps *number of controls* to a cost.  The default is the
        standard NCV quantum-cost model (NOT=1, CNOT=1, TOF=5, TOF4=13),
        the natural weighted metric the paper's Section 5 proposes.
        """
        from repro.synth.cost import NCV_COST_BY_CONTROLS

        if model is None:
            model = NCV_COST_BY_CONTROLS
        return sum(model[len(g.controls)] for g in self.gates)

    def gate_histogram(self) -> dict[str, int]:
        """Count of gates by kind name."""
        hist: dict[str, int] = {}
        for gate in self.gates:
            hist[gate.kind] = hist.get(gate.kind, 0) + 1
        return hist

    def used_wires(self) -> frozenset[int]:
        """Wires touched by at least one gate."""
        wires: set[int] = set()
        for gate in self.gates:
            wires.update(gate.support)
        return frozenset(wires)

    # ------------------------------------------------------------------
    # Formatting
    # ------------------------------------------------------------------
    def __str__(self) -> str:
        if not self.gates:
            return "(identity)"
        return " ".join(str(g) for g in self.gates)

    def __repr__(self) -> str:
        return f"Circuit({str(self)!r}, n_wires={self.n_wires})"

    def draw(self) -> str:
        """ASCII drawing of the circuit, one row per wire.

        Controls are drawn as ``●``, targets as ``⊕``, and vertical
        connections as ``│``, in the style of Figure 1 of the paper.
        """
        from repro.core.gates import WIRE_NAMES

        if not self.gates:
            return "\n".join(
                f"{WIRE_NAMES[w]}: ───" for w in range(self.n_wires)
            )
        cell = 4
        rows = [[f"{WIRE_NAMES[w]}: "] for w in range(self.n_wires)]
        for gate in self.gates:
            lo = min(gate.support)
            hi = max(gate.support)
            for w in range(self.n_wires):
                if w == gate.target:
                    symbol = "⊕"
                elif w in gate.controls:
                    symbol = "●"
                elif lo < w < hi:
                    symbol = "┼"
                else:
                    symbol = "─"
                rows[w].append(f"─{symbol}─".ljust(cell, "─"))
        return "\n".join("".join(row) for row in rows)
