"""Benchmark functions from Table 6 of the paper."""

from repro.benchmarks_data.functions import (
    BENCHMARKS,
    BenchmarkFunction,
    get_benchmark,
)

__all__ = ["BENCHMARKS", "BenchmarkFunction", "get_benchmark"]
