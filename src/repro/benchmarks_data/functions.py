"""The 13 benchmark functions of Table 6, with the paper's results.

Each entry records the specification, the size of the best previously
known circuit (SBKC) and its source, whether that circuit had been proved
optimal, the size of the optimal circuit (SOC) found by the paper, and
the paper's reported optimal circuit (which the tests verify against the
specification).

``mperk`` is special: the paper's 9-gate circuit realizes the
specification only up to a final relabeling of outputs (marked by an
asterisk in Table 6); ``output_permutation`` records the wire relabeling
that completes it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.circuit import Circuit
from repro.core.permutation import Permutation


@dataclass(frozen=True)
class BenchmarkFunction:
    """One row of Table 6."""

    name: str
    spec: tuple[int, ...]
    best_known_size: "int | None"
    best_known_source: str
    previously_proved_optimal: bool
    optimal_size: int
    paper_circuit: str
    needs_output_permutation: bool = False

    def permutation(self) -> Permutation:
        """The function as a :class:`Permutation`."""
        return Permutation.from_values(list(self.spec))

    def circuit(self) -> Circuit:
        """The paper's reported optimal circuit."""
        return Circuit.parse(self.paper_circuit, 4)


BENCHMARKS: tuple[BenchmarkFunction, ...] = (
    BenchmarkFunction(
        name="4_49",
        spec=(15, 1, 12, 3, 5, 6, 8, 7, 0, 10, 13, 9, 2, 4, 14, 11),
        best_known_size=12,
        best_known_source="[6]",
        previously_proved_optimal=False,
        optimal_size=12,
        paper_circuit=(
            "NOT(a) CNOT(c,a) CNOT(a,d) TOF(a,b,d) CNOT(d,a) TOF(c,d,b) "
            "TOF(a,d,c) TOF(b,c,a) TOF(a,b,d) NOT(a) CNOT(d,b) CNOT(d,c)"
        ),
    ),
    BenchmarkFunction(
        name="4bit-7-8",
        spec=(0, 1, 2, 3, 4, 5, 6, 8, 7, 9, 10, 11, 12, 13, 14, 15),
        best_known_size=7,
        best_known_source="[8]",
        previously_proved_optimal=False,
        optimal_size=7,
        paper_circuit=(
            "CNOT(d,b) CNOT(d,a) CNOT(c,d) TOF4(a,b,d,c) CNOT(c,d) "
            "CNOT(d,b) CNOT(d,a)"
        ),
    ),
    BenchmarkFunction(
        name="decode42",
        spec=(1, 2, 4, 8, 0, 3, 5, 6, 7, 9, 10, 11, 12, 13, 14, 15),
        best_known_size=11,
        best_known_source="[4]",
        previously_proved_optimal=False,
        optimal_size=10,
        paper_circuit=(
            "CNOT(c,b) CNOT(d,a) CNOT(c,a) TOF(a,d,b) CNOT(b,c) "
            "TOF4(a,b,c,d) TOF(b,d,c) CNOT(c,a) CNOT(a,b) NOT(a)"
        ),
    ),
    BenchmarkFunction(
        name="hwb4",
        spec=(0, 2, 4, 12, 8, 5, 9, 11, 1, 6, 10, 13, 3, 14, 7, 15),
        best_known_size=11,
        best_known_source="[6]",
        previously_proved_optimal=True,
        optimal_size=11,
        paper_circuit=(
            "CNOT(b,d) CNOT(d,a) CNOT(a,c) TOF4(b,c,d,a) CNOT(d,b) "
            "CNOT(c,d) TOF(a,c,b) TOF4(b,c,d,a) CNOT(d,c) CNOT(a,c) CNOT(b,d)"
        ),
    ),
    BenchmarkFunction(
        name="imark",
        spec=(4, 5, 2, 14, 0, 3, 6, 10, 11, 8, 15, 1, 12, 13, 7, 9),
        best_known_size=7,
        best_known_source="[13]",
        previously_proved_optimal=False,
        optimal_size=7,
        paper_circuit=(
            "TOF(c,d,a) TOF(a,b,d) CNOT(d,c) CNOT(b,c) CNOT(d,a) "
            "TOF(a,c,b) NOT(c)"
        ),
    ),
    BenchmarkFunction(
        name="mperk",
        spec=(3, 11, 2, 10, 0, 7, 1, 6, 15, 8, 14, 9, 13, 5, 12, 4),
        best_known_size=9,
        best_known_source="[12, 8]",
        previously_proved_optimal=False,
        optimal_size=9,
        # Table 6 marks mperk's size with an asterisk ("requires some extra
        # SWAP gates").  The circuit as printed nevertheless implements the
        # specification above exactly (verified in the tests), so the
        # asterisk evidently refers to the source circuit of [12, 8].
        paper_circuit=(
            "NOT(c) CNOT(d,c) TOF(c,d,b) TOF(a,c,d) CNOT(b,a) CNOT(d,a) "
            "CNOT(c,a) CNOT(a,b) CNOT(b,c)"
        ),
        needs_output_permutation=False,
    ),
    BenchmarkFunction(
        name="oc5",
        spec=(6, 0, 12, 15, 7, 1, 5, 2, 4, 10, 13, 3, 11, 8, 14, 9),
        best_known_size=15,
        best_known_source="[14]",
        previously_proved_optimal=False,
        optimal_size=11,
        paper_circuit=(
            "TOF(b,d,c) TOF(c,d,b) TOF(a,b,c) NOT(a) CNOT(d,b) CNOT(a,c) "
            "TOF(b,c,d) CNOT(a,b) CNOT(c,a) CNOT(a,c) TOF4(a,b,d,c)"
        ),
    ),
    BenchmarkFunction(
        name="oc6",
        spec=(9, 0, 2, 15, 11, 6, 7, 8, 14, 3, 4, 13, 5, 1, 12, 10),
        best_known_size=14,
        best_known_source="[14]",
        previously_proved_optimal=False,
        optimal_size=12,
        paper_circuit=(
            "TOF4(b,c,d,a) TOF4(a,c,d,b) CNOT(d,c) TOF(b,c,d) TOF(c,d,a) "
            "TOF4(a,b,d,c) CNOT(b,a) NOT(a) CNOT(c,b) CNOT(d,c) CNOT(a,d) "
            "TOF(b,d,c)"
        ),
    ),
    BenchmarkFunction(
        name="oc7",
        spec=(6, 15, 9, 5, 13, 12, 3, 7, 2, 10, 1, 11, 0, 14, 4, 8),
        best_known_size=17,
        best_known_source="[14]",
        previously_proved_optimal=False,
        optimal_size=13,
        paper_circuit=(
            "TOF(b,d,c) TOF(a,b,d) CNOT(b,a) TOF4(a,c,d,b) CNOT(c,b) "
            "CNOT(d,c) TOF(a,c,d) NOT(b) NOT(d) CNOT(b,c) TOF(b,d,a) "
            "TOF(a,c,d) CNOT(c,a)"
        ),
    ),
    BenchmarkFunction(
        name="oc8",
        spec=(11, 3, 9, 2, 7, 13, 15, 14, 8, 1, 4, 10, 0, 12, 6, 5),
        best_known_size=16,
        best_known_source="[14]",
        previously_proved_optimal=False,
        optimal_size=12,
        # The circuit as printed in the paper's text has 11 gates against a
        # stated SOC of 12; a leading CNOT(a,b) was evidently lost in
        # typesetting.  Re-inserting it is the unique single-gate completion
        # that realizes the specification (verified in the tests).
        paper_circuit=(
            "CNOT(a,b) CNOT(d,a) TOF(b,c,a) TOF(c,d,b) TOF4(a,b,d,c) "
            "TOF(a,b,d) TOF(a,d,b) NOT(a) NOT(b) TOF(b,d,a) CNOT(a,d) "
            "TOF(b,c,d)"
        ),
    ),
    BenchmarkFunction(
        name="primes4",
        spec=(2, 3, 5, 7, 11, 13, 0, 1, 4, 6, 8, 9, 10, 12, 14, 15),
        best_known_size=None,
        best_known_source="(new in the paper)",
        previously_proved_optimal=False,
        optimal_size=10,
        paper_circuit=(
            "CNOT(d,c) CNOT(c,a) CNOT(b,c) NOT(b) TOF(b,c,d) TOF4(a,b,d,c) "
            "TOF(a,c,b) NOT(a) TOF4(a,c,d,b) CNOT(b,a)"
        ),
    ),
    BenchmarkFunction(
        name="rd32",
        spec=(0, 7, 6, 9, 4, 11, 10, 13, 8, 15, 14, 1, 12, 3, 2, 5),
        best_known_size=4,
        best_known_source="[2]",
        previously_proved_optimal=True,
        optimal_size=4,
        paper_circuit="TOF(a,b,d) CNOT(a,b) TOF(b,c,d) CNOT(b,c)",
    ),
    BenchmarkFunction(
        name="shift4",
        spec=(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 0),
        best_known_size=4,
        best_known_source="[8]",
        previously_proved_optimal=True,
        optimal_size=4,
        paper_circuit="TOF4(a,b,c,d) TOF(a,b,c) CNOT(a,b) NOT(a)",
    ),
)


def get_benchmark(name: str) -> BenchmarkFunction:
    """Look a benchmark up by name (raises KeyError when unknown)."""
    for bench in BENCHMARKS:
        if bench.name == name:
            return bench
    raise KeyError(f"unknown benchmark: {name!r}")
