"""A compact CDCL SAT solver (watched literals, 1-UIP learning, VSIDS).

Implemented from scratch so the Große et al. SAT-synthesis comparison of
the paper's Section 2 can be reproduced without external dependencies.
The design follows MiniSat's architecture:

* two watched literals per clause with lazy watch repair,
* conflict analysis to the first unique implication point, with clause
  learning and non-chronological backjumping,
* exponentially-decayed variable activities (VSIDS) with phase saving,
* Luby-sequence restarts.

It comfortably handles the tens-of-thousands-of-clause instances the
synthesis encoding produces; it is, as the paper observes of SAT-based
synthesis generally, the scaling of the *encoding* with circuit depth
that makes this approach uncompetitive with search-and-lookup.
"""

from __future__ import annotations

import time
from dataclasses import dataclass


@dataclass(frozen=True)
class SatResult:
    """Outcome of a solver run.

    Attributes:
        satisfiable: Whether a model was found.
        model: For SAT instances, ``model[v]`` is the truth value of
            variable ``v`` (index 0 unused).
        conflicts: Total conflicts encountered.
        decisions: Total decisions made.
        propagations: Total literals propagated.
        exhausted: True when the run stopped on a conflict or time
            budget rather than a proof -- ``satisfiable=False`` is then
            *inconclusive*, not UNSAT.
    """

    satisfiable: bool
    model: "list[bool] | None"
    conflicts: int
    decisions: int
    propagations: int
    exhausted: bool = False


_UNASSIGNED = 0


class Solver:
    """CDCL solver over a fixed CNF.

    Args:
        n_vars: Number of variables (1-based indices).
        clauses: Iterable of clauses (tuples/lists of non-zero ints).
    """

    def __init__(self, n_vars: int, clauses):
        self.n_vars = n_vars
        self.assign = [_UNASSIGNED] * (n_vars + 1)  # 0 / +1 / -1
        self.level = [0] * (n_vars + 1)
        self.reason: list = [None] * (n_vars + 1)
        self.activity = [0.0] * (n_vars + 1)
        self.phase = [False] * (n_vars + 1)
        self.trail: list[int] = []
        self.trail_lim: list[int] = []
        self.qhead = 0
        self.var_inc = 1.0
        self.var_decay = 0.95
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self.ok = True
        # Budget/cancellation state, rebound by each solve() call.
        self._time_limit: "float | None" = None
        self._clock = time.monotonic
        self._cancel = None

        self.clauses: list[list[int]] = []
        # watches[lit] = clause indices watching lit; literal encoding:
        # positive literal v -> index 2v, negative -> 2v+1.
        self.watches: list[list[int]] = [[] for _ in range(2 * n_vars + 2)]
        for clause in clauses:
            self._add_clause(list(dict.fromkeys(clause)))

    # ------------------------------------------------------------------
    # Literal helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _widx(literal: int) -> int:
        return 2 * literal if literal > 0 else -2 * literal + 1

    def _value(self, literal: int) -> int:
        value = self.assign[abs(literal)]
        if value == _UNASSIGNED:
            return _UNASSIGNED
        return value if literal > 0 else -value

    # ------------------------------------------------------------------
    # Clause management
    # ------------------------------------------------------------------
    def _add_clause(self, literals: list[int]) -> None:
        if not self.ok:
            return
        # Remove tautologies.
        literal_set = set(literals)
        if any(-lit in literal_set for lit in literals):
            return
        if len(literals) == 0:
            self.ok = False
            return
        if len(literals) == 1:
            if not self._enqueue(literals[0], None):
                self.ok = False
            return
        index = len(self.clauses)
        self.clauses.append(literals)
        self.watches[self._widx(literals[0])].append(index)
        self.watches[self._widx(literals[1])].append(index)

    def _enqueue(self, literal: int, reason) -> bool:
        value = self._value(literal)
        if value == 1:
            return True
        if value == -1:
            return False
        var = abs(literal)
        self.assign[var] = 1 if literal > 0 else -1
        self.level[var] = len(self.trail_lim)
        self.reason[var] = reason
        self.trail.append(literal)
        return True

    # ------------------------------------------------------------------
    # Boolean constraint propagation
    # ------------------------------------------------------------------
    def _propagate(self) -> "list[int] | None":
        """Propagate until fixpoint; returns a conflicting clause or None."""
        while self.qhead < len(self.trail):
            literal = self.trail[self.qhead]
            self.qhead += 1
            self.propagations += 1
            false_lit = -literal
            watch_list = self.watches[self._widx(false_lit)]
            new_watch_list = []
            conflict = None
            for ci_pos in range(len(watch_list)):
                ci = watch_list[ci_pos]
                if conflict is not None:
                    new_watch_list.append(ci)
                    continue
                clause = self.clauses[ci]
                # Ensure the false literal is in slot 1.
                if clause[0] == false_lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._value(first) == 1:
                    new_watch_list.append(ci)
                    continue
                # Look for a replacement watch.
                moved = False
                for slot in range(2, len(clause)):
                    if self._value(clause[slot]) != -1:
                        clause[1], clause[slot] = clause[slot], clause[1]
                        self.watches[self._widx(clause[1])].append(ci)
                        moved = True
                        break
                if moved:
                    continue
                # Clause is unit or conflicting.
                new_watch_list.append(ci)
                if not self._enqueue(first, clause):
                    conflict = clause
            self.watches[self._widx(false_lit)] = new_watch_list
            if conflict is not None:
                return conflict
        return None

    # ------------------------------------------------------------------
    # Conflict analysis (first UIP)
    # ------------------------------------------------------------------
    def _analyze(self, conflict: list[int]) -> tuple[list[int], int]:
        learnt = []
        seen = [False] * (self.n_vars + 1)
        counter = 0
        literal = None
        reason = conflict
        index = len(self.trail) - 1
        current_level = len(self.trail_lim)
        while True:
            for reason_lit in reason:
                if literal is not None and reason_lit == literal:
                    continue
                var = abs(reason_lit)
                if seen[var] or self.level[var] == 0:
                    continue
                seen[var] = True
                self._bump(var)
                if self.level[var] == current_level:
                    counter += 1
                else:
                    learnt.append(reason_lit)
            # Select the next trail literal to resolve on.
            while not seen[abs(self.trail[index])]:
                index -= 1
            literal = self.trail[index]
            var = abs(literal)
            seen[var] = False
            counter -= 1
            index -= 1
            if counter == 0:
                learnt.insert(0, -literal)
                break
            reason = self.reason[var]
        # Backjump level: second-highest level in the learnt clause.
        if len(learnt) == 1:
            return learnt, 0
        back_level = max(self.level[abs(lit)] for lit in learnt[1:])
        # Put a literal of back_level in slot 1 (watch invariant).
        for slot in range(1, len(learnt)):
            if self.level[abs(learnt[slot])] == back_level:
                learnt[1], learnt[slot] = learnt[slot], learnt[1]
                break
        return learnt, back_level

    def _bump(self, var: int) -> None:
        self.activity[var] += self.var_inc
        if self.activity[var] > 1e100:
            for v in range(1, self.n_vars + 1):
                self.activity[v] *= 1e-100
            self.var_inc *= 1e-100

    def _cancel_until(self, target_level: int) -> None:
        while len(self.trail_lim) > target_level:
            boundary = self.trail_lim.pop()
            for position in range(len(self.trail) - 1, boundary - 1, -1):
                literal = self.trail[position]
                var = abs(literal)
                self.phase[var] = literal > 0
                self.assign[var] = _UNASSIGNED
                self.reason[var] = None
            del self.trail[boundary:]
        self.qhead = min(self.qhead, len(self.trail))

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def _decide(self) -> int:
        best_var = 0
        best_activity = -1.0
        for var in range(1, self.n_vars + 1):
            if self.assign[var] == _UNASSIGNED and self.activity[var] > best_activity:
                best_var = var
                best_activity = self.activity[var]
        return best_var

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def solve(
        self,
        conflict_budget: "int | None" = None,
        time_budget: "float | None" = None,
        cancel=None,
        clock=time.monotonic,
    ) -> SatResult:
        """Run the solver.

        ``conflict_budget`` bounds total conflicts, ``time_budget``
        bounds wall-clock seconds (both None = unlimited); overrunning
        either returns an *inconclusive* result with
        ``satisfiable=False`` and ``exhausted=True``.  ``cancel`` is an
        optional zero-argument cooperative checkpoint called once per
        conflict and restart; whatever it raises propagates untouched
        (the racing engine passes a ``CancelToken.checkpoint`` here so
        a losing SAT lane stops within one conflict of being told to).
        """
        self._time_limit = (
            clock() + time_budget if time_budget is not None else None
        )
        self._clock = clock
        self._cancel = cancel
        if not self.ok:
            return SatResult(False, None, self.conflicts, self.decisions, 0)
        conflict = self._propagate()
        if conflict is not None:
            return SatResult(
                False, None, self.conflicts, self.decisions, self.propagations
            )
        restart_unit = 64
        luby_index = 1
        while True:
            limit = restart_unit * _luby(luby_index)
            outcome = self._search(limit, conflict_budget)
            if outcome is not None:
                return outcome
            luby_index += 1
            if self._out_of_budget(conflict_budget):
                return self._exhausted_result()

    def _out_of_budget(self, conflict_budget) -> bool:
        if conflict_budget is not None and self.conflicts >= conflict_budget:
            return True
        return (
            self._time_limit is not None
            and self._clock() >= self._time_limit
        )

    def _exhausted_result(self) -> SatResult:
        return SatResult(
            False,
            None,
            self.conflicts,
            self.decisions,
            self.propagations,
            exhausted=True,
        )

    def _search(self, restart_limit: int, conflict_budget) -> "SatResult | None":
        local_conflicts = 0
        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.conflicts += 1
                local_conflicts += 1
                if self._cancel is not None:
                    self._cancel()
                if len(self.trail_lim) == 0:
                    return SatResult(
                        False,
                        None,
                        self.conflicts,
                        self.decisions,
                        self.propagations,
                    )
                learnt, back_level = self._analyze(conflict)
                self._cancel_until(back_level)
                if len(learnt) == 1:
                    self._enqueue(learnt[0], None)
                else:
                    index = len(self.clauses)
                    self.clauses.append(learnt)
                    self.watches[self._widx(learnt[0])].append(index)
                    self.watches[self._widx(learnt[1])].append(index)
                    self._enqueue(learnt[0], learnt)
                self.var_inc /= self.var_decay
                if self._out_of_budget(conflict_budget):
                    return self._exhausted_result()
                continue
            if local_conflicts >= restart_limit:
                self._cancel_until(0)
                return None
            var = self._decide()
            if var == 0:
                model = [False] * (self.n_vars + 1)
                for v in range(1, self.n_vars + 1):
                    model[v] = self.assign[v] == 1
                return SatResult(
                    True, model, self.conflicts, self.decisions, self.propagations
                )
            self.decisions += 1
            self.trail_lim.append(len(self.trail))
            literal = var if self.phase[var] else -var
            self._enqueue(literal, None)


def _luby(index: int) -> int:
    """The Luby restart sequence 1,1,2,1,1,2,4,..."""
    k = 1
    while (1 << (k + 1)) - 1 <= index:
        k += 1
    while index != (1 << k) - 1:
        index -= (1 << (k - 1)) - 1 + 1
        k = 1
        while (1 << (k + 1)) - 1 <= index:
            k += 1
    return 1 << (k - 1)


def solve_cnf(
    cnf,
    conflict_budget: "int | None" = None,
    time_budget: "float | None" = None,
    cancel=None,
) -> SatResult:
    """Convenience wrapper: solve a :class:`repro.sat.cnf.CNF`."""
    return Solver(cnf.n_vars, cnf.clauses).solve(
        conflict_budget, time_budget=time_budget, cancel=cancel
    )
