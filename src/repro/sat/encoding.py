"""CNF encoding of exact reversible-circuit synthesis (Große-style).

"Does a circuit of exactly ``d`` NCT gates realizing specification ``f``
exist?" is encoded propositionally:

* one-hot *selector* variables ``s[t][g]`` choose the gate at step t;
* *state* variables ``x[t][line][bit]`` track the value of every truth-
  table line through the circuit;
* transition clauses force ``x[t+1] = g(x[t])`` for the selected gate:
  untouched bits copy through, and the target bit flips exactly when all
  control bits are 1;
* boundary clauses pin ``x[0]`` to the inputs and ``x[d]`` to ``f``.

This is the approach of Große et al. (the paper's reference [3]); the
clause count grows as Θ(d · |gates| · 2^n · n), which is why the method
stalls beyond a dozen gates while the paper's algorithm does not.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.gates import Gate, all_gates
from repro.core.permutation import Permutation
from repro.sat.cnf import CNF


@dataclass
class SynthesisEncoding:
    """A CNF instance asking for a ``n_gates``-gate circuit for ``perm``.

    Attributes:
        cnf: The formula.
        selectors: ``selectors[t][g]`` = selector variable of gate ``g``
            at step ``t``.
        gates: The gate library, aligned with selector indices.
    """

    cnf: CNF
    selectors: list[list[int]]
    gates: list[Gate]
    n_wires: int
    n_gates: int

    def decode(self, model: list[bool]):
        """Extract the synthesized circuit from a satisfying model."""
        from repro.core.circuit import Circuit

        chosen = []
        for step_vars in self.selectors:
            selected = [
                self.gates[g] for g, var in enumerate(step_vars) if model[var]
            ]
            if len(selected) != 1:
                raise AssertionError("selector one-hot constraint violated")
            chosen.append(selected[0])
        return Circuit(gates=tuple(chosen), n_wires=self.n_wires)


def encode_synthesis(
    perm: Permutation, n_gates: int, gates: "list[Gate] | None" = None
) -> SynthesisEncoding:
    """Build the CNF for "a circuit of exactly ``n_gates`` gates exists"."""
    n_wires = perm.n_wires
    n_lines = 1 << n_wires
    if gates is None:
        gates = all_gates(n_wires)

    cnf = CNF()
    # State variables: state[t][line][bit].
    state = [
        [[cnf.new_var() for _ in range(n_wires)] for _ in range(n_lines)]
        for _ in range(n_gates + 1)
    ]
    # Selector variables, one-hot per step.
    selectors = [
        [cnf.new_var() for _ in range(len(gates))] for _ in range(n_gates)
    ]
    for step_vars in selectors:
        cnf.exactly_one(step_vars)

    # Boundary conditions.
    for line in range(n_lines):
        target = perm(line)
        for bit in range(n_wires):
            cnf.add(state[0][line][bit] if (line >> bit) & 1 else -state[0][line][bit])
            cnf.add(
                state[n_gates][line][bit]
                if (target >> bit) & 1
                else -state[n_gates][line][bit]
            )

    # Transitions.
    for t in range(n_gates):
        for g_index, gate in enumerate(gates):
            sel = selectors[t][g_index]
            for line in range(n_lines):
                before = state[t][line]
                after = state[t + 1][line]
                for bit in range(n_wires):
                    if bit != gate.target:
                        # sel -> (after[bit] <-> before[bit])
                        cnf.add(-sel, after[bit], -before[bit])
                        cnf.add(-sel, -after[bit], before[bit])
                controls = [before[c] for c in gate.controls]
                tgt_before = before[gate.target]
                tgt_after = after[gate.target]
                # All controls 1 -> target flips.
                cnf.add(-sel, *[-c for c in controls], -tgt_after, -tgt_before)
                cnf.add(-sel, *[-c for c in controls], tgt_after, tgt_before)
                # Any control 0 -> target copies.
                for control in controls:
                    cnf.add(-sel, control, tgt_after, -tgt_before)
                    cnf.add(-sel, control, -tgt_after, tgt_before)

    return SynthesisEncoding(
        cnf=cnf,
        selectors=selectors,
        gates=list(gates),
        n_wires=n_wires,
        n_gates=n_gates,
    )
