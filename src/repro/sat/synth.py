"""SAT-based exact synthesis by iterative deepening.

The provably-optimal-but-slow baseline: ask the CDCL solver for a
0-gate circuit, then 1, 2, ... until satisfiable.  The first SAT depth
is the optimal size (the encoding is exact).  The paper's Table 6 notes
that Große et al. needed 21,897 seconds for ``hwb4`` this way -- the
same function its search-and-lookup answers in ~1e-4 s -- and our
benchmarks reproduce that cliff in miniature.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.circuit import Circuit
from repro.core.permutation import Permutation
from repro.errors import SynthesisError, UnsatisfiableError
from repro.sat.encoding import encode_synthesis
from repro.sat.solver import Solver


@dataclass(frozen=True)
class SatSynthesisResult:
    """Outcome of a SAT synthesis run.

    Attributes:
        circuit: The optimal circuit.
        depths_tried: How many UNSAT depths preceded the SAT one.
        total_conflicts: Conflicts summed over all depths.
    """

    circuit: Circuit
    depths_tried: int
    total_conflicts: int


def sat_synthesize_fixed_size(
    spec,
    n_gates: int,
    conflict_budget: "int | None" = None,
    time_budget: "float | None" = None,
    cancel=None,
) -> Circuit:
    """A circuit with exactly ``n_gates`` gates, or raise
    :class:`UnsatisfiableError` when none exists (or a budget runs out).

    ``time_budget`` bounds the solve in wall-clock seconds and
    ``cancel`` is a cooperative checkpoint called at every conflict --
    the hooks through which a request's ``deadline_ms`` and the racing
    engine's loser cancellation reach the CDCL loop.
    """
    perm = Permutation.coerce(spec)
    encoding = encode_synthesis(perm, n_gates)
    result = Solver(encoding.cnf.n_vars, encoding.cnf.clauses).solve(
        conflict_budget, time_budget=time_budget, cancel=cancel
    )
    if not result.satisfiable:
        raise UnsatisfiableError(
            f"no {n_gates}-gate circuit"
            + (" (budget exhausted)" if result.exhausted else "")
        )
    circuit = encoding.decode(result.model)
    if not circuit.implements(perm):
        raise AssertionError("SAT model decodes to an incorrect circuit")
    return circuit


def sat_synthesize(
    spec,
    max_gates: int = 8,
    conflict_budget_per_depth: "int | None" = None,
    time_budget: "float | None" = None,
    cancel=None,
) -> SatSynthesisResult:
    """Iterative-deepening exact synthesis (optimal but slow).

    Raises :class:`SynthesisError` when no circuit of <= ``max_gates``
    gates is found.  ``time_budget`` bounds the *whole* deepening run
    (shared across depths, monotonic clock); exhausting it raises
    :class:`SynthesisError` immediately instead of burning the
    remaining depths on already-dead budgets.  Conflict-budget
    exhaustion keeps its historical behavior (continue deepening; the
    caller knows its answers may be inconclusive).
    """
    import time as _time

    perm = Permutation.coerce(spec)
    total_conflicts = 0
    deadline = (
        _time.monotonic() + time_budget if time_budget is not None else None
    )
    for depth in range(max_gates + 1):
        remaining = None
        if deadline is not None:
            remaining = deadline - _time.monotonic()
            if remaining <= 0:
                raise SynthesisError(
                    f"SAT time budget exhausted after {depth} depth(s) "
                    f"({total_conflicts} conflicts)"
                )
        encoding = encode_synthesis(perm, depth)
        result = Solver(encoding.cnf.n_vars, encoding.cnf.clauses).solve(
            conflict_budget_per_depth, time_budget=remaining, cancel=cancel
        )
        total_conflicts += result.conflicts
        if result.satisfiable:
            circuit = encoding.decode(result.model)
            if not circuit.implements(perm):
                raise AssertionError("SAT model decodes to an incorrect circuit")
            return SatSynthesisResult(
                circuit=circuit,
                depths_tried=depth,
                total_conflicts=total_conflicts,
            )
        if (
            result.exhausted
            and deadline is not None
            and deadline - _time.monotonic() <= 0
        ):
            raise SynthesisError(
                f"SAT time budget exhausted at depth {depth} "
                f"({total_conflicts} conflicts)"
            )
    raise SynthesisError(
        f"no circuit with at most {max_gates} gates found by SAT search"
    )
