"""SAT-based exact synthesis by iterative deepening.

The provably-optimal-but-slow baseline: ask the CDCL solver for a
0-gate circuit, then 1, 2, ... until satisfiable.  The first SAT depth
is the optimal size (the encoding is exact).  The paper's Table 6 notes
that Große et al. needed 21,897 seconds for ``hwb4`` this way -- the
same function its search-and-lookup answers in ~1e-4 s -- and our
benchmarks reproduce that cliff in miniature.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.circuit import Circuit
from repro.core.permutation import Permutation
from repro.errors import SynthesisError, UnsatisfiableError
from repro.sat.encoding import encode_synthesis
from repro.sat.solver import Solver


@dataclass(frozen=True)
class SatSynthesisResult:
    """Outcome of a SAT synthesis run.

    Attributes:
        circuit: The optimal circuit.
        depths_tried: How many UNSAT depths preceded the SAT one.
        total_conflicts: Conflicts summed over all depths.
    """

    circuit: Circuit
    depths_tried: int
    total_conflicts: int


def sat_synthesize_fixed_size(
    spec, n_gates: int, conflict_budget: "int | None" = None
) -> Circuit:
    """A circuit with exactly ``n_gates`` gates, or raise
    :class:`UnsatisfiableError` when none exists (or the budget runs out).
    """
    perm = Permutation.coerce(spec)
    encoding = encode_synthesis(perm, n_gates)
    result = Solver(encoding.cnf.n_vars, encoding.cnf.clauses).solve(
        conflict_budget
    )
    if not result.satisfiable:
        raise UnsatisfiableError(
            f"no {n_gates}-gate circuit (or conflict budget exhausted)"
        )
    circuit = encoding.decode(result.model)
    if not circuit.implements(perm):
        raise AssertionError("SAT model decodes to an incorrect circuit")
    return circuit


def sat_synthesize(
    spec, max_gates: int = 8, conflict_budget_per_depth: "int | None" = None
) -> SatSynthesisResult:
    """Iterative-deepening exact synthesis (optimal but slow).

    Raises :class:`SynthesisError` when no circuit of <= ``max_gates``
    gates is found.
    """
    perm = Permutation.coerce(spec)
    total_conflicts = 0
    for depth in range(max_gates + 1):
        encoding = encode_synthesis(perm, depth)
        result = Solver(encoding.cnf.n_vars, encoding.cnf.clauses).solve(
            conflict_budget_per_depth
        )
        total_conflicts += result.conflicts
        if result.satisfiable:
            circuit = encoding.decode(result.model)
            if not circuit.implements(perm):
                raise AssertionError("SAT model decodes to an incorrect circuit")
            return SatSynthesisResult(
                circuit=circuit,
                depths_tried=depth,
                total_conflicts=total_conflicts,
            )
    raise SynthesisError(
        f"no circuit with at most {max_gates} gates found by SAT search"
    )
