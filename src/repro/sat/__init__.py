"""SAT subsystem: a CDCL solver and an exact-synthesis encoding.

Reproduces the Große et al. comparison of the paper's Section 2: exact
SAT-based Toffoli-network synthesis works but scales poorly, while the
search-and-lookup algorithm answers the same queries in microseconds.
"""

from repro.sat.cnf import CNF, Literal
from repro.sat.solver import SatResult, Solver
from repro.sat.synth import sat_synthesize, sat_synthesize_fixed_size

__all__ = [
    "CNF",
    "Literal",
    "Solver",
    "SatResult",
    "sat_synthesize",
    "sat_synthesize_fixed_size",
]
