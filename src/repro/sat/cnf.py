"""CNF formula construction.

Variables are positive integers; a literal is ``+v`` (variable true) or
``-v`` (variable false), the familiar DIMACS convention.  :class:`CNF`
accumulates clauses and hands out fresh variables; small helper methods
encode the constraints the synthesis encoding needs (at-most-one,
exactly-one, implications).
"""

from __future__ import annotations

from dataclasses import dataclass, field

Literal = int


@dataclass
class CNF:
    """A growing CNF formula.

    Attributes:
        n_vars: Number of variables allocated so far.
        clauses: List of clauses (tuples of literals).
    """

    n_vars: int = 0
    clauses: list[tuple[Literal, ...]] = field(default_factory=list)

    def new_var(self) -> int:
        """Allocate a fresh variable and return its index (>= 1)."""
        self.n_vars += 1
        return self.n_vars

    def new_vars(self, count: int) -> list[int]:
        """Allocate ``count`` fresh variables."""
        return [self.new_var() for _ in range(count)]

    def add(self, *literals: Literal) -> None:
        """Add one clause (a disjunction of the given literals)."""
        if not literals:
            raise ValueError("empty clause makes the formula trivially UNSAT")
        for literal in literals:
            if literal == 0 or abs(literal) > self.n_vars:
                raise ValueError(f"literal {literal} out of range")
        self.clauses.append(tuple(literals))

    def add_implies(self, antecedent: Literal, *consequent: Literal) -> None:
        """antecedent -> (c1 ∨ c2 ∨ ...)."""
        self.add(-antecedent, *consequent)

    def at_most_one(self, literals: list[Literal]) -> None:
        """Pairwise at-most-one constraint."""
        for i in range(len(literals)):
            for j in range(i + 1, len(literals)):
                self.add(-literals[i], -literals[j])

    def exactly_one(self, literals: list[Literal]) -> None:
        """Exactly-one constraint (one clause + pairwise AMO)."""
        self.add(*literals)
        self.at_most_one(literals)

    def __len__(self) -> int:
        return len(self.clauses)
