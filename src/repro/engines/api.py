"""The unified synthesis contract: one request, one result, any engine.

Every synthesis engine in this repository -- the paper's optimal
meet-in-the-middle search (Algorithm 1), the plain-BFS baseline of
Prasad et al., the MMD transformation heuristic, SAT iterative
deepening, depth-optimal layer search (§5), the exhaustive linear
(NOT/CNOT) engine (§4.3), the wide n >= 5 engine, and the Clifford
stabilizer engine -- answers the same question with a different
trade-off.  This module gives them one vocabulary:

* :class:`SynthesisRequest` -- a specification plus engine-independent
  constraints.
* :class:`SynthesisResult` -- circuit, size, depth, NCV cost (via
  :func:`repro.synth.cost.gate_cost`), the optimality guarantee, the
  engine that answered, and the wall time spent.
* :class:`EngineCapabilities` / :class:`Engine` -- the protocol every
  adapter in :mod:`repro.engines` implements.

Results are wire-friendly: :meth:`SynthesisResult.to_wire` is a
deterministic JSON-ready dict (timing excluded), so a daemon-served
answer is byte-identical to a direct in-process one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.core.circuit import Circuit
from repro.core.permutation import Permutation
from repro.synth.cost import gate_cost

#: Guarantee labels used across engines.
GUARANTEE_OPTIMAL = "optimal"
GUARANTEE_HEURISTIC = "heuristic"
#: A valid circuit whose size is only an upper bound on the optimum --
#: the label of service responses degraded under deadline pressure or an
#: open circuit breaker (see repro.service.resilience).
GUARANTEE_UPPER_BOUND = "upper_bound"

#: Optimization metrics engines may target.
METRIC_GATES = "gates"
METRIC_DEPTH = "depth"


@dataclass(frozen=True)
class SynthesisRequest:
    """One synthesis question, engine-agnostic.

    Attributes:
        spec: The specification.  Permutation engines accept anything
            :meth:`repro.core.permutation.Permutation.coerce` does (a
            ``Permutation``, a spec string, a value sequence, or a
            packed word with ``n_wires``); the wide engine additionally
            accepts value rows longer than 16; the Clifford engine
            expects a :class:`repro.stabilizer.tableau.CliffordTableau`.
        n_wires: Wire count, when the spec alone does not determine it
            (packed words).  ``None`` lets the engine use its own width.
        options: Per-request knobs (engine-specific, rarely needed).
    """

    spec: Any
    n_wires: "int | None" = None
    options: Mapping[str, Any] = field(default_factory=dict)

    def permutation(self, default_wires: int) -> Permutation:
        """Coerce the spec to a :class:`Permutation` (the common case)."""
        return Permutation.coerce(self.spec, self.n_wires or default_wires)


@dataclass(frozen=True)
class SynthesisResult:
    """One synthesis answer, engine-agnostic.

    Attributes:
        engine: Registry name of the engine that answered.
        spec: Normalized textual spec (bracketed values for permutation
            engines, a tableau key for Clifford).
        size: Gate count of the returned circuit.
        circuit: Textual circuit (the paper's syntax for NCT engines,
            generator labels for Clifford).
        guarantee: ``"optimal"`` (provably minimal under ``metric``) or
            ``"heuristic"`` (an upper bound).
        metric: What the engine minimized: ``"gates"`` or ``"depth"``.
        depth: Layer depth of the circuit (None for non-NCT circuits).
        cost: NCV quantum cost via :func:`repro.synth.cost.gate_cost`
            (None for non-NCT circuits).
        seconds: Wall time of the synthesis call (excluded from
            :meth:`to_wire` so wire results stay deterministic).
        extra: Engine-specific facts (search statistics, portfolio tier,
            SAT conflicts, ...).  Values must be JSON-representable.
        circuit_obj: The in-memory :class:`Circuit`, when the engine
            produced one (None for Clifford label sequences).
    """

    engine: str
    spec: str
    size: int
    circuit: str
    guarantee: str
    metric: str
    depth: "int | None"
    cost: "int | None"
    seconds: float
    extra: dict[str, Any] = field(default_factory=dict)
    circuit_obj: "Circuit | None" = None

    @staticmethod
    def from_circuit(
        engine: str,
        circuit: Circuit,
        spec: str,
        *,
        guarantee: str,
        seconds: float,
        metric: str = METRIC_GATES,
        extra: "dict[str, Any] | None" = None,
    ) -> "SynthesisResult":
        """Build a result from an NCT circuit, deriving the metrics.

        Gates outside the NCV cost model (4+ controls, produced by the
        wide engine on n >= 5 wires) leave ``cost`` as None.
        """
        try:
            cost = sum(gate_cost(g) for g in circuit.gates)
        except KeyError:
            cost = None
        return SynthesisResult(
            engine=engine,
            spec=spec,
            size=circuit.gate_count,
            circuit=str(circuit),
            guarantee=guarantee,
            metric=metric,
            depth=circuit.depth(),
            cost=cost,
            seconds=seconds,
            extra=dict(extra or {}),
            circuit_obj=circuit,
        )

    def to_wire(self) -> dict[str, Any]:
        """Deterministic JSON-ready view (no timing, no live objects).

        The service daemon sends exactly this dict, so daemon-served
        results are byte-identical to direct adapter calls.
        """
        wire: dict[str, Any] = {
            "engine": self.engine,
            "spec": self.spec,
            "size": self.size,
            "circuit": self.circuit,
            "guarantee": self.guarantee,
            "metric": self.metric,
            "depth": self.depth,
            "cost": self.cost,
        }
        if self.extra:
            wire["extra"] = dict(self.extra)
        return wire


@dataclass(frozen=True)
class EngineCapabilities:
    """What an engine can do, for routing and the ``repro engines`` matrix.

    Attributes:
        guarantee: Default guarantee of its results.
        metric: The metric it optimizes.
        spec_kind: ``"permutation"`` or ``"tableau"``.
        max_wires: Largest width the engine accepts (0 = unbounded).
        reach: Human description of coverage limits.
        servable: Whether the daemon will route queries to this engine.
        cancellable: Whether the engine honors a cooperative
            cancellation checkpoint passed as ``options["cancel"]``
            (see :mod:`repro.service.tasks`); the racing engine only
            cancels lanes whose engines declare this.
    """

    guarantee: str
    metric: str = METRIC_GATES
    spec_kind: str = "permutation"
    max_wires: int = 4
    reach: str = ""
    servable: bool = False
    cancellable: bool = False


class Engine:
    """Protocol every engine adapter implements.

    Subclasses define ``name`` (the registry id), ``capabilities``, and
    :meth:`synthesize`; :meth:`prepare` warms any lazy state (databases,
    search lists) and returns ``self`` so construction stays cheap.
    """

    name: str = ""
    capabilities: EngineCapabilities

    def prepare(self) -> "Engine":
        """Build or load expensive state ahead of the first query."""
        return self

    def synthesize(self, request: SynthesisRequest) -> SynthesisResult:
        """Answer one request; raises :class:`repro.errors.SynthesisError`
        (or a subclass) when the spec is out of this engine's reach."""
        raise NotImplementedError


__all__ = [
    "GUARANTEE_HEURISTIC",
    "GUARANTEE_OPTIMAL",
    "GUARANTEE_UPPER_BOUND",
    "METRIC_DEPTH",
    "METRIC_GATES",
    "Engine",
    "EngineCapabilities",
    "SynthesisRequest",
    "SynthesisResult",
]
