"""The portfolio engine: fast upper bound first, proof when affordable.

Strategy (one query):

1. Run the MMD heuristic (milliseconds) for an upper bound ``U`` and a
   working circuit.
2. Ask the optimal meet-in-the-middle engine.  Within reach it answers
   exactly; out of reach it *proves* a lower bound ``LB``.
3. If ``LB == U`` the heuristic circuit is already provably minimal --
   the scan's failure is the proof (the paper's Section 4.4 argument).
4. Otherwise close the gap with SAT at fixed sizes ``LB .. U-1``.  The
   first satisfiable size is optimal; all-UNSAT proves the heuristic
   circuit optimal.  With a conflict budget the SAT answers may be
   inconclusive, in which case the heuristic circuit is returned as-is.

Every result records which tier answered (``extra["tier"]``), so
callers can see whether they paid for a proof or got a fast bound.
"""

from __future__ import annotations

import time
from typing import Any

from repro.engines.api import (
    GUARANTEE_HEURISTIC,
    GUARANTEE_OPTIMAL,
    Engine,
    EngineCapabilities,
    SynthesisRequest,
    SynthesisResult,
)
from repro.engines.baselines import HeuristicEngine
from repro.engines.optimal import OptimalEngine
from repro.errors import SizeLimitExceededError, UnsatisfiableError
from repro.perf.trace import trace
from repro.sat.synth import sat_synthesize_fixed_size


class PortfolioEngine(Engine):
    """Heuristic upper bound -> optimal search -> SAT gap closing."""

    name = "portfolio"

    def __init__(
        self,
        n_wires: int = 4,
        k: int = 6,
        max_list_size: "int | None" = None,
        cache_dir: Any = None,
        verbose: bool = False,
        sat_gate_limit: int = 6,
        conflict_budget: "int | None" = None,
    ) -> None:
        self.heuristic = HeuristicEngine()
        self.optimal = OptimalEngine(
            n_wires=n_wires,
            k=k,
            max_list_size=max_list_size,
            cache_dir=cache_dir,
            verbose=verbose,
        )
        self.sat_gate_limit = sat_gate_limit
        self.conflict_budget = conflict_budget
        self.capabilities = EngineCapabilities(
            guarantee=GUARANTEE_OPTIMAL,
            max_wires=4,
            reach=(
                "every function; the answer degrades to a heuristic upper "
                "bound when all proof tiers are out of reach"
            ),
        )

    def prepare(self) -> "PortfolioEngine":
        self.optimal.prepare()
        return self

    def synthesize(self, request: SynthesisRequest) -> SynthesisResult:
        perm = request.permutation(self.optimal.impl.n_wires)
        started = time.perf_counter()
        with trace("portfolio.tier", tier="heuristic"):
            upper = self.heuristic.synthesize(
                SynthesisRequest(spec=perm, n_wires=perm.n_wires)
            )
        try:
            with trace("portfolio.tier", tier="optimal"):
                exact = self.optimal.synthesize(
                    SynthesisRequest(spec=perm, n_wires=perm.n_wires)
                )
        except SizeLimitExceededError as exc:
            return self._close_gap(perm, upper, exc.lower_bound, started)
        return self._finish(
            exact, started, tier="optimal", upper_bound=upper.size
        )

    # ------------------------------------------------------------------
    # Tiers
    # ------------------------------------------------------------------
    def _close_gap(
        self,
        perm: Any,
        upper: SynthesisResult,
        lower_bound: int,
        started: float,
    ) -> SynthesisResult:
        """The optimal scan proved size >= lower_bound; the heuristic
        circuit has upper.size gates.  Squeeze or give up gracefully."""
        if upper.size <= lower_bound:
            # The bound meets the heuristic circuit: provably minimal.
            return self._finish(
                upper,
                started,
                tier="heuristic",
                guarantee=GUARANTEE_OPTIMAL,
                upper_bound=upper.size,
                lower_bound=lower_bound,
            )
        if upper.size - 1 > self.sat_gate_limit:
            # SAT at these sizes is hopeless; return the honest bound.
            return self._finish(
                upper,
                started,
                tier="heuristic",
                upper_bound=upper.size,
                lower_bound=lower_bound,
            )
        inconclusive = False
        for n_gates in range(lower_bound, upper.size):
            try:
                with trace("portfolio.tier", tier="sat", n_gates=n_gates):
                    circuit = sat_synthesize_fixed_size(
                        perm, n_gates, conflict_budget=self.conflict_budget
                    )
            except UnsatisfiableError:
                # Exact UNSAT with no budget; possibly budget exhaustion
                # otherwise (which weakens the all-UNSAT proof below).
                inconclusive = inconclusive or self.conflict_budget is not None
                continue
            seconds = time.perf_counter() - started
            result = SynthesisResult.from_circuit(
                self.name,
                circuit,
                upper.spec,
                guarantee=GUARANTEE_OPTIMAL,
                seconds=seconds,
                extra={
                    "tier": "sat",
                    "upper_bound": upper.size,
                    "lower_bound": lower_bound,
                },
            )
            return result
        # No smaller circuit exists (or the budget ran out trying).
        return self._finish(
            upper,
            started,
            tier="heuristic",
            guarantee=(
                GUARANTEE_HEURISTIC if inconclusive else GUARANTEE_OPTIMAL
            ),
            upper_bound=upper.size,
            lower_bound=lower_bound,
        )

    def _finish(
        self,
        inner: SynthesisResult,
        started: float,
        *,
        tier: str,
        guarantee: "str | None" = None,
        **extra: Any,
    ) -> SynthesisResult:
        """Re-badge an inner tier's result as the portfolio's answer."""
        seconds = time.perf_counter() - started
        merged = dict(inner.extra)
        merged["tier"] = tier
        merged.update(extra)
        return SynthesisResult(
            engine=self.name,
            spec=inner.spec,
            size=inner.size,
            circuit=inner.circuit,
            guarantee=guarantee if guarantee is not None else inner.guarantee,
            metric=inner.metric,
            depth=inner.depth,
            cost=inner.cost,
            seconds=seconds,
            extra=merged,
            circuit_obj=inner.circuit_obj,
        )


def make_engine(
    n_wires: int = 4,
    k: int = 6,
    max_list_size: "int | None" = None,
    cache_dir: Any = None,
    verbose: bool = False,
    sat_gate_limit: int = 6,
    conflict_budget: "int | None" = None,
) -> PortfolioEngine:
    """Registry factory for the ``portfolio`` engine."""
    return PortfolioEngine(
        n_wires=n_wires,
        k=k,
        max_list_size=max_list_size,
        cache_dir=cache_dir,
        verbose=verbose,
        sat_gate_limit=sat_gate_limit,
        conflict_budget=conflict_budget,
    )


__all__ = ["PortfolioEngine", "make_engine"]
