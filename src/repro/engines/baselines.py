"""Adapters for the comparison baselines: plain BFS, MMD, SAT.

These are the engines the paper measures itself against (Section 1 and
Table 6): the unreduced BFS of Prasad et al., the transformation-based
heuristic of Miller, Maslov & Dueck, and SAT iterative deepening.
"""

from __future__ import annotations

import time

from repro.core import packed
from repro.core.circuit import Circuit
from repro.core.gates import Gate, all_gates
from repro.engines.api import (
    GUARANTEE_HEURISTIC,
    GUARANTEE_OPTIMAL,
    Engine,
    EngineCapabilities,
    SynthesisRequest,
    SynthesisResult,
)
from repro.errors import SizeLimitExceededError, SynthesisError
from repro.synth.heuristic import mmd_best_of_both, mmd_synthesize
from repro.synth.plain_bfs import PlainBfsResult, plain_bfs
from repro.sat.synth import sat_synthesize


class PlainBfsEngine(Engine):
    """Unreduced BFS baseline: every raw function of size <= k, stored.

    Memory grows x48 versus the reduced engine (the point of the
    comparison), so the practical depth is k <= 5 on four wires.
    """

    name = "plain-bfs"

    def __init__(self, n_wires: int = 4, k: int = 4) -> None:
        self.n_wires = n_wires
        self.k = k
        self._result: "PlainBfsResult | None" = None
        self._library: "list[tuple[Gate, int]] | None" = None
        self.capabilities = EngineCapabilities(
            guarantee=GUARANTEE_OPTIMAL,
            max_wires=4,
            reach=f"optimal size <= k = {k} (no symmetry reduction)",
        )

    def prepare(self) -> "PlainBfsEngine":
        if self._result is None:
            self._result = plain_bfs(self.n_wires, self.k)
            self._library = [
                (g, g.to_word(self.n_wires)) for g in all_gates(self.n_wires)
            ]
        return self

    @property
    def result(self) -> PlainBfsResult:
        self.prepare()
        assert self._result is not None
        return self._result

    def synthesize(self, request: SynthesisRequest) -> SynthesisResult:
        perm = request.permutation(self.n_wires)
        if perm.n_wires != self.n_wires:
            raise SynthesisError(
                f"plain-bfs engine built for {self.n_wires} wires, "
                f"got a {perm.n_wires}-wire spec"
            )
        started = time.perf_counter()
        table = self.result
        size = table.size_of(perm.word)
        if size is None:
            raise SizeLimitExceededError(
                f"function requires more than {self.k} gates "
                "(plain BFS exhausted)",
                lower_bound=self.k + 1,
            )
        # The table stores sizes only; reconstruct by gate peeling, as in
        # the reduced engine but over raw words.
        gates: list[Gate] = []
        current = perm.word
        remaining = size
        assert self._library is not None
        while remaining > 0:
            for gate, gate_word in self._library:
                rest = packed.compose(current, gate_word, self.n_wires)
                if table.size_of(rest) == remaining - 1:
                    gates.append(gate)
                    current = rest
                    remaining -= 1
                    break
            else:
                raise SynthesisError("plain BFS table inconsistent during peel")
        gates.reverse()
        circuit = Circuit(gates=tuple(gates), n_wires=self.n_wires)
        if not circuit.implements(perm):
            raise AssertionError("plain BFS peel produced a wrong circuit")
        seconds = time.perf_counter() - started
        return SynthesisResult.from_circuit(
            self.name,
            circuit,
            perm.spec(),
            guarantee=GUARANTEE_OPTIMAL,
            seconds=seconds,
            extra={"states_stored": table.states_stored},
        )


class HeuristicEngine(Engine):
    """MMD transformation-based heuristic: always succeeds, never proves.

    The default runs both sweep directions and keeps the smaller
    circuit; ``variant`` may pin ``"bidirectional"``/``"unidirectional"``.
    """

    name = "heuristic"

    def __init__(self, variant: str = "best") -> None:
        if variant not in ("best", "bidirectional", "unidirectional"):
            raise SynthesisError(f"unknown MMD variant {variant!r}")
        self.variant = variant
        self.capabilities = EngineCapabilities(
            guarantee=GUARANTEE_HEURISTIC,
            max_wires=4,
            reach="every function (upper bound only)",
            servable=True,
        )

    def synthesize(self, request: SynthesisRequest) -> SynthesisResult:
        perm = request.permutation(4)
        started = time.perf_counter()
        if self.variant == "best":
            outcome = mmd_best_of_both(perm)
            circuit, bidirectional = outcome.circuit, outcome.bidirectional
        else:
            bidirectional = self.variant == "bidirectional"
            circuit = mmd_synthesize(perm, bidirectional=bidirectional)
        seconds = time.perf_counter() - started
        return SynthesisResult.from_circuit(
            self.name,
            circuit,
            perm.spec(),
            guarantee=GUARANTEE_HEURISTIC,
            seconds=seconds,
            extra={"bidirectional": bidirectional},
        )


class SatEngine(Engine):
    """SAT iterative deepening: provably optimal, exponentially slow.

    The first satisfiable gate count is the optimal size; the adapter
    reports the UNSAT depths and total conflicts alongside the circuit.
    """

    name = "sat"

    def __init__(
        self,
        max_gates: int = 8,
        conflict_budget: "int | None" = None,
        time_budget: "float | None" = None,
    ) -> None:
        self.max_gates = max_gates
        self.conflict_budget = conflict_budget
        self.time_budget = time_budget
        self.capabilities = EngineCapabilities(
            guarantee=GUARANTEE_OPTIMAL,
            max_wires=4,
            reach=f"optimal size <= {max_gates} (wall time grows steeply)",
            cancellable=True,
        )

    def synthesize(self, request: SynthesisRequest) -> SynthesisResult:
        perm = request.permutation(4)
        started = time.perf_counter()
        # Per-request budgets override the constructor defaults: the
        # daemon propagates a request's remaining ``deadline_ms`` as
        # ``time_budget`` and the racing engine threads a cancellation
        # checkpoint as ``cancel``, so a served SAT solve never runs
        # unbounded.
        time_budget = request.options.get("time_budget", self.time_budget)
        cancel = request.options.get("cancel")
        outcome = sat_synthesize(
            perm,
            max_gates=self.max_gates,
            conflict_budget_per_depth=self.conflict_budget,
            time_budget=time_budget,
            cancel=cancel,
        )
        seconds = time.perf_counter() - started
        return SynthesisResult.from_circuit(
            self.name,
            outcome.circuit,
            perm.spec(),
            guarantee=GUARANTEE_OPTIMAL,
            seconds=seconds,
            extra={
                "depths_tried": outcome.depths_tried,
                "total_conflicts": outcome.total_conflicts,
            },
        )


def make_plain_bfs(n_wires: int = 4, k: int = 4) -> PlainBfsEngine:
    """Registry factory for the ``plain-bfs`` engine."""
    return PlainBfsEngine(n_wires=n_wires, k=k)


def make_heuristic(variant: str = "best") -> HeuristicEngine:
    """Registry factory for the ``heuristic`` engine."""
    return HeuristicEngine(variant=variant)


def make_sat(
    max_gates: int = 8,
    conflict_budget: "int | None" = None,
    time_budget: "float | None" = None,
) -> SatEngine:
    """Registry factory for the ``sat`` engine."""
    return SatEngine(
        max_gates=max_gates,
        conflict_budget=conflict_budget,
        time_budget=time_budget,
    )


__all__ = [
    "HeuristicEngine",
    "PlainBfsEngine",
    "SatEngine",
    "make_heuristic",
    "make_plain_bfs",
    "make_sat",
]
