"""Engine racing: competing lanes, first proof wins, losers cancelled.

A hard query (size > k + m) has three very different routes to an
answer, with wildly different and *unpredictable* costs:

* the optimal ``A_i``-list scan -- exact within reach ``L``, seconds of
  numpy work, and when the function is *out* of reach all that work
  only buys a lower bound;
* SAT iterative deepening -- exact everywhere, usually far slower, but
  occasionally fast (shallow circuits, lucky conflict order);
* the MMD heuristic -- milliseconds, never a proof on its own.

Instead of guessing which route to take (the portfolio engine's fixed
tier order), the ``race`` engine launches all three as cancellable
:class:`repro.service.tasks.WorkItem` lanes and returns the first
*provably optimal* finisher:

* the optimal lane finishing exactly wins outright;
* the SAT lane finishing wins outright;
* the optimal lane proving a lower bound that *meets* the heuristic's
  circuit promotes that circuit to provably optimal (the paper's
  Section 4.4 argument, as in the portfolio engine).

The remaining lanes are cancelled through their tokens the moment a
winner is decided -- the scan stops at its next ``A_i`` boundary, the
SAT solver at its next conflict.  When the request's deadline expires
before any proof, every lane is cancelled and the best known bound is
returned with ``guarantee: "upper_bound"`` (the portfolio/degraded wire
semantics), never an error.

Results carry ``extra["winner"]`` and ``extra["cancelled_lanes"]`` so
callers -- and the daemon's wire protocol -- can see which lane paid
for the answer and which were preempted.

This module lives in the engines layer: :mod:`repro.service.tasks` is
imported lazily inside methods (the sanctioned exempt pattern for the
``engines -> service`` boundary), and the engine degrades to plain
unracing work items when constructed without a service registry.
"""

from __future__ import annotations

import threading
import time
from typing import Any

from repro.engines.api import (
    GUARANTEE_HEURISTIC,
    GUARANTEE_OPTIMAL,
    GUARANTEE_UPPER_BOUND,
    Engine,
    EngineCapabilities,
    SynthesisRequest,
    SynthesisResult,
)
from repro.engines.baselines import HeuristicEngine, SatEngine
from repro.engines.optimal import OptimalEngine
from repro.errors import SizeLimitExceededError, SynthesisError
from repro.perf.trace import trace

#: Lane names, in winner-priority order where ties happen.
LANES: tuple[str, ...] = ("optimal", "sat", "heuristic")

#: How often the referee loop re-examines lane states (seconds).  Lane
#: completions also wake it immediately via an event.
_POLL_SECONDS = 0.005

#: Bounded grace for loser threads to observe their checkpoint before
#: the race returns (they keep running as daemon threads past this and
#: mark themselves cancelled at the next boundary).
_JOIN_GRACE_SECONDS = 0.25


class RaceEngine(Engine):
    """Race the optimal scan, SAT, and the MMD heuristic; cancel losers."""

    name = "race"

    def __init__(
        self,
        n_wires: int = 4,
        k: int = 6,
        max_list_size: "int | None" = None,
        cache_dir: Any = None,
        verbose: bool = False,
        sat_max_gates: int = 8,
        sat_conflict_budget: "int | None" = None,
        time_budget: "float | None" = None,
        handle: Any = None,
        tasks: Any = None,
    ) -> None:
        self.optimal = OptimalEngine(
            n_wires=n_wires,
            k=k,
            max_list_size=max_list_size,
            cache_dir=cache_dir,
            verbose=verbose,
        )
        if handle is not None:
            # A warm handle (the daemon's) replaces the lane's facade so
            # the race never re-prepares the database.
            from repro.synth.synthesizer import OptimalSynthesizer

            self.optimal.impl = OptimalSynthesizer.from_handle(handle)
        self.sat = SatEngine(
            max_gates=sat_max_gates, conflict_budget=sat_conflict_budget
        )
        self.heuristic = HeuristicEngine()
        #: Optional :class:`repro.service.tasks.TaskRegistry`; when the
        #: daemon creates this engine it injects its own, so race lanes
        #: show up in ``stats``/``health`` like every other work item.
        self.tasks = tasks
        #: Default wall-clock budget when the request carries none.
        self.time_budget = time_budget
        self.capabilities = EngineCapabilities(
            guarantee=GUARANTEE_OPTIMAL,
            max_wires=4,
            reach=(
                "every function; provably optimal when a proof lane wins, "
                "best upper bound at the deadline"
            ),
            servable=True,
            cancellable=True,
        )

    def prepare(self) -> "RaceEngine":
        self.optimal.prepare()
        return self

    # ------------------------------------------------------------------
    # The race
    # ------------------------------------------------------------------
    def synthesize(self, request: SynthesisRequest) -> SynthesisResult:
        from repro.service.tasks import CANCELLED, DEGRADED, DONE, WorkItem

        perm = request.permutation(self.optimal.impl.n_wires)
        started = time.perf_counter()
        deadline = self._race_deadline(request)
        group = self._group_token(deadline)
        finished = threading.Event()

        def lane_fn(lane: str, engine: Engine) -> Any:
            def run(token: Any) -> SynthesisResult:
                options: dict[str, Any] = {"cancel": token.checkpoint}
                if deadline is not None:
                    options["time_budget"] = max(0.0, deadline.remaining())
                with trace("race.lane", lane=lane):
                    return engine.synthesize(
                        SynthesisRequest(
                            spec=perm, n_wires=perm.n_wires, options=options
                        )
                    )

            return run

        lanes: dict[str, Any] = {}
        engines: dict[str, Engine] = {
            "optimal": self.optimal,
            "sat": self.sat,
            "heuristic": self.heuristic,
        }
        with trace("race.start", lanes=len(LANES)):
            for lane in LANES:
                fn = lane_fn(lane, engines[lane])
                token = group.child()
                if self.tasks is not None:
                    item = self.tasks.create(f"race.{lane}", fn, token=token)
                else:
                    item = WorkItem(f"race.{lane}", fn, token=token)
                lanes[lane] = item

                def runner(work: Any = item) -> None:
                    work.run()
                    finished.set()

                threading.Thread(
                    target=runner, name=f"race-{lane}", daemon=True
                ).start()

        winner: "str | None" = None
        timed_out = False
        while winner is None:
            opt, sat, heu = lanes["optimal"], lanes["sat"], lanes["heuristic"]
            if opt.state == DONE:
                winner = "optimal"
                break
            if sat.state == DONE:
                winner = "sat"
                break
            bound = self._optimal_bound(opt)
            if (
                bound is not None
                and heu.state == DONE
                and heu.result.size <= bound
            ):
                # The scan's failure is the proof: LB meets the circuit.
                winner = "heuristic"
                break
            if group.cancelled or (deadline is not None and deadline.expired()):
                timed_out = True
                break
            states = {item.state for item in lanes.values()}
            if states <= {DONE, CANCELLED, DEGRADED}:
                break  # every lane terminal, no proof possible
            finished.wait(timeout=_POLL_SECONDS)
            finished.clear()

        cancelled_lanes = self._cancel_losers(
            lanes, winner, "deadline" if timed_out else "lost_race"
        )
        with trace("race.winner", winner=winner or "none"):
            return self._decide(
                lanes, winner, cancelled_lanes, perm.spec(), started,
                timed_out=timed_out,
            )

    # ------------------------------------------------------------------
    # Referee helpers
    # ------------------------------------------------------------------
    def _race_deadline(self, request: SynthesisRequest) -> Any:
        """The race's deadline object (duck-typed ``expired()``), from
        the request's ``deadline`` option, else its ``time_budget``,
        else this engine's default budget.  None = run to completion."""
        deadline = request.options.get("deadline")
        if deadline is not None:
            return deadline
        budget = request.options.get("time_budget", self.time_budget)
        if budget is None:
            return None
        from repro.service.resilience import Deadline

        return Deadline(float(budget))

    def _group_token(self, deadline: Any) -> Any:
        from repro.service.tasks import CancelToken

        return CancelToken(deadline=deadline)

    @staticmethod
    def _optimal_bound(item: Any) -> "int | None":
        """The lower bound proven by a degraded optimal lane, if any."""
        from repro.service.tasks import DEGRADED

        if item.state == DEGRADED and isinstance(
            item.error, SizeLimitExceededError
        ):
            return int(item.error.lower_bound)
        return None

    @staticmethod
    def _cancel_losers(
        lanes: dict[str, Any], winner: "str | None", reason: str
    ) -> list[str]:
        """Cancel every non-winning lane; returns the lanes that were
        preempted (asked to stop -- by the referee or by the deadline --
        instead of finishing on their own)."""
        from repro.service.tasks import CANCELLED

        preempted: list[str] = []
        for lane, item in lanes.items():
            if lane == winner or item.finished:
                continue
            item.cancel(reason)
            preempted.append(lane)
        deadline_grace = time.monotonic() + _JOIN_GRACE_SECONDS
        for lane in preempted:
            remaining = deadline_grace - time.monotonic()
            if remaining <= 0:
                break
            lanes[lane].wait(timeout=remaining)
        return sorted(
            lane
            for lane, item in lanes.items()
            if item.state == CANCELLED
            or (not item.finished and item.token.cancelled)
        )

    def _decide(
        self,
        lanes: dict[str, Any],
        winner: "str | None",
        cancelled_lanes: list[str],
        spec: str,
        started: float,
        *,
        timed_out: bool = False,
    ) -> SynthesisResult:
        """Shape the final result from the lane states."""
        opt, heu = lanes["optimal"], lanes["heuristic"]
        lower_bound = self._optimal_bound(opt)
        if winner is not None:
            inner = lanes[winner].result
            extra: dict[str, Any] = {}
            if winner == "heuristic" and lower_bound is not None:
                extra["lower_bound"] = lower_bound
                extra["upper_bound"] = inner.size
            return self._finish(
                inner, spec, started, winner, cancelled_lanes,
                guarantee=GUARANTEE_OPTIMAL, **extra,
            )
        # No proof: fall back to the best upper bound we have.  The
        # heuristic lane is milliseconds of work, so normally it already
        # finished; if even that was preempted, run it inline -- a
        # response beats purity, exactly as in the degraded service path.
        upper = heu.result
        if upper is None:
            upper = self.heuristic.synthesize(
                SynthesisRequest(spec=spec, n_wires=self.optimal.impl.n_wires)
            )
        if upper is None:  # pragma: no cover - heuristic cannot fail
            raise SynthesisError("race ended with no usable lane result")
        guarantee = GUARANTEE_UPPER_BOUND if timed_out else GUARANTEE_HEURISTIC
        extra = {"upper_bound": upper.size}
        if lower_bound is not None:
            extra["lower_bound"] = lower_bound
        if timed_out:
            extra["degraded_reason"] = "deadline"
        return self._finish(
            upper, spec, started, None, cancelled_lanes,
            guarantee=guarantee, **extra,
        )

    def _finish(
        self,
        inner: SynthesisResult,
        spec: str,
        started: float,
        winner: "str | None",
        cancelled_lanes: list[str],
        *,
        guarantee: str,
        **extra: Any,
    ) -> SynthesisResult:
        """Re-badge a lane's result as the race's answer (the portfolio
        engine's tier semantics: ``tier`` names the lane that paid)."""
        merged = dict(inner.extra)
        merged["tier"] = winner if winner is not None else "heuristic"
        merged["winner"] = winner
        merged["cancelled_lanes"] = cancelled_lanes
        merged.update(extra)
        return SynthesisResult(
            engine=self.name,
            spec=spec,
            size=inner.size,
            circuit=inner.circuit,
            guarantee=guarantee,
            metric=inner.metric,
            depth=inner.depth,
            cost=inner.cost,
            seconds=time.perf_counter() - started,
            extra=merged,
            circuit_obj=inner.circuit_obj,
        )


def make_engine(
    n_wires: int = 4,
    k: int = 6,
    max_list_size: "int | None" = None,
    cache_dir: Any = None,
    verbose: bool = False,
    sat_max_gates: int = 8,
    sat_conflict_budget: "int | None" = None,
    time_budget: "float | None" = None,
    handle: Any = None,
    tasks: Any = None,
) -> RaceEngine:
    """Registry factory for the ``race`` engine."""
    return RaceEngine(
        n_wires=n_wires,
        k=k,
        max_list_size=max_list_size,
        cache_dir=cache_dir,
        verbose=verbose,
        sat_max_gates=sat_max_gates,
        sat_conflict_budget=sat_conflict_budget,
        time_budget=time_budget,
        handle=handle,
        tasks=tasks,
    )


__all__ = ["LANES", "RaceEngine", "make_engine"]
