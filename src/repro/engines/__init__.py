"""repro.engines -- one synthesis API across every engine in the repo.

The engine layer is the single sanctioned route to a circuit::

    from repro.engines import SynthesisRequest, create_engine

    engine = create_engine("optimal", k=6).prepare()
    result = engine.synthesize(SynthesisRequest(spec="[1,2,3,...,0]"))
    print(result.size, result.circuit, result.guarantee)

``create_engine`` resolves names lazily (the SAT solver, stabilizer
tableaux, and BFS machinery import only when asked for), and every
engine answers with the same :class:`SynthesisResult` contract, which
is what lets the CLI (``repro synth --engine``), the service daemon
(``engine`` field of the JSONL protocol), and the benchmarks treat all
engines uniformly.  The ``engine-layering`` check enforces the boundary:
concrete synthesizer classes are imported here and nowhere above.
"""

from repro.engines.api import (
    GUARANTEE_HEURISTIC,
    GUARANTEE_OPTIMAL,
    GUARANTEE_UPPER_BOUND,
    METRIC_DEPTH,
    METRIC_GATES,
    Engine,
    EngineCapabilities,
    SynthesisRequest,
    SynthesisResult,
)
from repro.engines.registry import (
    EngineSpec,
    create_engine,
    engine_capabilities,
    engine_names,
    engine_summary,
    register_engine,
    servable_engine_names,
)

__all__ = [
    "GUARANTEE_HEURISTIC",
    "GUARANTEE_OPTIMAL",
    "GUARANTEE_UPPER_BOUND",
    "METRIC_DEPTH",
    "METRIC_GATES",
    "Engine",
    "EngineCapabilities",
    "EngineSpec",
    "SynthesisRequest",
    "SynthesisResult",
    "create_engine",
    "engine_capabilities",
    "engine_names",
    "engine_summary",
    "register_engine",
    "servable_engine_names",
]
