"""Lazy engine registry: names in, adapters out, imports on demand.

Engines are registered as ``name -> (module, factory)`` strings so that
listing names costs nothing and :func:`create_engine` only imports the
module actually asked for -- the SAT encoder, the stabilizer tableaux,
and the numpy BFS machinery stay unloaded until a query needs them.

Factories accept keyword options; :func:`create_engine` filters the
caller's options down to what the factory's signature declares, so a
generic caller (the CLI, the daemon) can pass its full knob set to any
engine without each factory having to swallow ``**kwargs``.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from importlib import import_module
from typing import Any, Callable

from repro.engines.api import Engine, EngineCapabilities
from repro.errors import SynthesisError
from repro.perf.trace import trace


@dataclass(frozen=True)
class EngineSpec:
    """One registry row: where the factory lives, plus a summary."""

    name: str
    module: str
    factory: str
    summary: str


_SPECS: dict[str, EngineSpec] = {}


def register_engine(name: str, module: str, factory: str, summary: str) -> None:
    """Register an engine factory by dotted module path (no import)."""
    if name in _SPECS:
        raise ValueError(f"duplicate engine name: {name}")
    _SPECS[name] = EngineSpec(name=name, module=module, factory=factory, summary=summary)


def engine_names() -> list[str]:
    """All registered engine names, sorted (no modules imported)."""
    return sorted(_SPECS)


def engine_summary(name: str) -> str:
    """The one-line summary of a registered engine (no import)."""
    return _spec(name).summary


def _spec(name: str) -> EngineSpec:
    spec = _SPECS.get(name)
    if spec is None:
        raise SynthesisError(
            f"unknown engine {name!r}; known engines: {', '.join(engine_names())}"
        )
    return spec


def _factory(name: str) -> Callable[..., Engine]:
    spec = _spec(name)
    module = import_module(spec.module)
    return getattr(module, spec.factory)


def create_engine(name: str, **options: Any) -> Engine:
    """Instantiate an engine by name (lazy import, cheap construction).

    Options the factory's signature does not declare are dropped, so
    generic callers may pass one uniform knob set (``n_wires``, ``k``,
    ``max_list_size``, ``cache_dir``, ``verbose``, ...) to every engine.
    Heavy state (databases, lists) is built lazily or via ``prepare()``.
    """
    with trace("engine.create", engine=name):
        factory = _factory(name)
        parameters = inspect.signature(factory).parameters
        accepts_any = any(
            p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()
        )
        if not accepts_any:
            options = {k: v for k, v in options.items() if k in parameters}
        return factory(**options)


def engine_capabilities(name: str) -> EngineCapabilities:
    """Capabilities of an engine (imports its module, builds nothing)."""
    return create_engine(name).capabilities


def servable_engine_names() -> list[str]:
    """Engines the service daemon is willing to route queries to."""
    return [n for n in engine_names() if engine_capabilities(n).servable]


# ---------------------------------------------------------------------------
# Built-in engines.  Registration is data-only; nothing below imports the
# heavy modules until create_engine() is called with the matching name.
# ---------------------------------------------------------------------------
register_engine(
    "optimal", "repro.engines.optimal", "make_engine",
    "meet-in-the-middle search over the BFS database (paper Algorithm 1)",
)
register_engine(
    "plain-bfs", "repro.engines.baselines", "make_plain_bfs",
    "raw-function BFS baseline without the x48 symmetry reduction",
)
register_engine(
    "heuristic", "repro.engines.baselines", "make_heuristic",
    "MMD transformation-based heuristic (fast, not optimal)",
)
register_engine(
    "sat", "repro.engines.baselines", "make_sat",
    "SAT iterative deepening (optimal but slow; the Table 6 baseline)",
)
register_engine(
    "depth", "repro.engines.extensions", "make_depth",
    "depth-optimal layer search (paper section 5)",
)
register_engine(
    "linear", "repro.engines.extensions", "make_linear",
    "exhaustive NOT/CNOT search over the affine group (paper section 4.3)",
)
register_engine(
    "wide", "repro.engines.extensions", "make_wide",
    "array-based BFS for n >= 5 wires (paper section 5)",
)
register_engine(
    "clifford", "repro.engines.extensions", "make_clifford",
    "exhaustive Clifford/stabilizer synthesis over {H, S, S-dagger, CNOT}",
)
register_engine(
    "portfolio", "repro.engines.portfolio", "make_engine",
    "MMD upper bound, then optimal search, then SAT; reports the tier",
)
register_engine(
    "race", "repro.engines.racing", "make_engine",
    "races optimal scan, SAT, and MMD as cancellable lanes; first proof "
    "wins, losers are preempted",
)


__all__ = [
    "EngineSpec",
    "create_engine",
    "engine_capabilities",
    "engine_names",
    "engine_summary",
    "register_engine",
    "servable_engine_names",
]
