"""Adapters for the paper's Section 5 extensions: depth, linear, wide,
Clifford.

Each wraps an existing specialized synthesizer in the unified
:class:`repro.engines.api.Engine` protocol.  The linear and depth
engines are exact within their domains; the wide engine trades the
packed-word representation for array rows to go past four wires; the
Clifford engine works on stabilizer tableaux rather than permutations.
"""

from __future__ import annotations

import time
from typing import Any, Sequence

from repro.core import spec as spec_mod
from repro.engines.api import (
    GUARANTEE_OPTIMAL,
    METRIC_DEPTH,
    Engine,
    EngineCapabilities,
    SynthesisRequest,
    SynthesisResult,
)
from repro.errors import SynthesisError
from repro.synth.depth import DepthOptimalSynthesizer
from repro.synth.linear import LinearSynthesizer
from repro.synth.wide import WideBfsResult, wide_bfs, wide_synthesize


class DepthEngine(Engine):
    """Provably depth-minimal synthesis (layers of disjoint-support gates)."""

    name = "depth"

    def __init__(self, n_wires: int = 4, max_depth: int = 4) -> None:
        self.impl = DepthOptimalSynthesizer(n_wires=n_wires, max_depth=max_depth)
        self.capabilities = EngineCapabilities(
            guarantee=GUARANTEE_OPTIMAL,
            metric=METRIC_DEPTH,
            max_wires=4,
            reach=f"optimal depth <= {max_depth}",
            servable=True,
        )

    def prepare(self) -> "DepthEngine":
        self.impl.database
        return self

    def synthesize(self, request: SynthesisRequest) -> SynthesisResult:
        perm = request.permutation(self.impl.n_wires)
        started = time.perf_counter()
        circuit = self.impl.synthesize(perm)
        seconds = time.perf_counter() - started
        return SynthesisResult.from_circuit(
            self.name,
            circuit,
            perm.spec(),
            guarantee=GUARANTEE_OPTIMAL,
            metric=METRIC_DEPTH,
            seconds=seconds,
            extra={"optimal_depth": circuit.depth()},
        )


class LinearEngine(Engine):
    """Exhaustive NOT/CNOT synthesis over the affine group (Table 5)."""

    name = "linear"

    def __init__(self, n_wires: int = 4) -> None:
        self.impl = LinearSynthesizer(n_wires=n_wires)
        self.capabilities = EngineCapabilities(
            guarantee=GUARANTEE_OPTIMAL,
            max_wires=4,
            reach="NOT/CNOT-computable (affine) functions only",
            servable=True,
        )

    def prepare(self) -> "LinearEngine":
        self.impl.database
        return self

    def synthesize(self, request: SynthesisRequest) -> SynthesisResult:
        perm = request.permutation(self.impl.n_wires)
        started = time.perf_counter()
        circuit = self.impl.synthesize(perm)
        seconds = time.perf_counter() - started
        return SynthesisResult.from_circuit(
            self.name,
            circuit,
            perm.spec(),
            guarantee=GUARANTEE_OPTIMAL,
            seconds=seconds,
            extra={"library": "NOT/CNOT"},
        )


class WideEngine(Engine):
    """Array-row BFS for wide functions (n >= 5, paper Section 5).

    Specs are value sequences of length ``2**n_wires`` (spec strings and
    :class:`Permutation` objects also work for n <= 4).
    """

    name = "wide"

    def __init__(
        self,
        n_wires: int = 5,
        k: int = 3,
        max_frontier: "int | None" = 4_000_000,
    ) -> None:
        self.n_wires = n_wires
        self.k = k
        self.max_frontier = max_frontier
        self._result: "WideBfsResult | None" = None
        self.capabilities = EngineCapabilities(
            guarantee=GUARANTEE_OPTIMAL,
            max_wires=0,
            reach=f"any width, optimal size <= k = {k}",
        )

    def prepare(self) -> "WideEngine":
        if self._result is None:
            self._result = wide_bfs(self.n_wires, self.k, self.max_frontier)
        return self

    @property
    def result(self) -> WideBfsResult:
        self.prepare()
        assert self._result is not None
        return self._result

    def _values_of(self, request: SynthesisRequest) -> list[int]:
        spec: Any = request.spec
        if hasattr(spec, "values") and hasattr(spec, "n_wires"):  # Permutation
            return list(spec.values)
        if isinstance(spec, str):
            return list(spec_mod.parse_spec(spec))
        if isinstance(spec, int):
            raise SynthesisError(
                "the wide engine takes value sequences, not packed words"
            )
        return [int(v) for v in spec]

    def synthesize(self, request: SynthesisRequest) -> SynthesisResult:
        values = self._values_of(request)
        if len(values) != (1 << self.n_wires):
            raise SynthesisError(
                f"wide engine built for {self.n_wires} wires expects "
                f"{1 << self.n_wires} values, got {len(values)}"
            )
        started = time.perf_counter()
        circuit = wide_synthesize(self.result, values)
        seconds = time.perf_counter() - started
        return SynthesisResult.from_circuit(
            self.name,
            circuit,
            spec_mod.format_spec(values),
            guarantee=GUARANTEE_OPTIMAL,
            seconds=seconds,
            extra={"states_stored": self.result.states_stored},
        )


class CliffordEngine(Engine):
    """Exhaustive optimal Clifford synthesis over {H, S, S-dagger, CNOT}.

    Specs are :class:`repro.stabilizer.tableau.CliffordTableau` objects;
    results carry generator labels (no NCT depth/cost metrics).
    """

    name = "clifford"

    def __init__(self, n_qubits: int = 2) -> None:
        # Import lazily relative to the registry, but eagerly for the
        # adapter: constructing the engine means stabilizer work is coming.
        from repro.stabilizer.synthesis import CliffordSynthesizer

        self.impl = CliffordSynthesizer(n_qubits)
        self.capabilities = EngineCapabilities(
            guarantee=GUARANTEE_OPTIMAL,
            spec_kind="tableau",
            max_wires=2,
            reach="the full Clifford group on n <= 2 qubits",
        )

    def prepare(self) -> "CliffordEngine":
        self.impl.sizes
        return self

    def synthesize(self, request: SynthesisRequest) -> SynthesisResult:
        from repro.stabilizer.tableau import CliffordTableau

        tableau = request.spec
        if not isinstance(tableau, CliffordTableau):
            raise SynthesisError(
                "the clifford engine takes CliffordTableau specs, "
                f"got {type(tableau).__name__}"
            )
        started = time.perf_counter()
        labels: Sequence[str] = self.impl.synthesize(tableau)
        seconds = time.perf_counter() - started
        return SynthesisResult(
            engine=self.name,
            spec=f"tableau:{tableau.key()}",
            size=len(labels),
            circuit=" ".join(labels) if labels else "(identity)",
            guarantee=GUARANTEE_OPTIMAL,
            metric="gates",
            depth=None,
            cost=None,
            seconds=seconds,
            extra={"n_qubits": self.impl.n_qubits},
        )


def make_depth(n_wires: int = 4, max_depth: int = 4) -> DepthEngine:
    """Registry factory for the ``depth`` engine."""
    return DepthEngine(n_wires=n_wires, max_depth=max_depth)


def make_linear(n_wires: int = 4) -> LinearEngine:
    """Registry factory for the ``linear`` engine."""
    return LinearEngine(n_wires=n_wires)


def make_wide(
    n_wires: int = 5, k: int = 3, max_frontier: "int | None" = 4_000_000
) -> WideEngine:
    """Registry factory for the ``wide`` engine."""
    return WideEngine(n_wires=n_wires, k=k, max_frontier=max_frontier)


def make_clifford(n_qubits: int = 2) -> CliffordEngine:
    """Registry factory for the ``clifford`` engine."""
    return CliffordEngine(n_qubits=n_qubits)


__all__ = [
    "CliffordEngine",
    "DepthEngine",
    "LinearEngine",
    "WideEngine",
    "make_clifford",
    "make_depth",
    "make_linear",
    "make_wide",
]
