"""Adapter for the paper's optimal meet-in-the-middle engine.

Wraps :class:`repro.synth.synthesizer.OptimalSynthesizer` (Algorithm 1
over the Algorithm 2 database) in the :class:`repro.engines.api.Engine`
protocol.  This module is also the sanctioned way for layers above the
engine boundary (service daemon, worker pool, CLI) to obtain the
concrete synthesizer -- the ``engine-layering`` check flags direct
imports of ``OptimalSynthesizer`` elsewhere.
"""

from __future__ import annotations

import time
from typing import Any

from repro.engines.api import (
    GUARANTEE_OPTIMAL,
    Engine,
    EngineCapabilities,
    SynthesisRequest,
    SynthesisResult,
)
from repro.perf.trace import trace
from repro.synth.synthesizer import OptimalSynthesizer, SynthesisHandle


def make_optimal_synthesizer(
    n_wires: int = 4,
    k: int = 6,
    max_list_size: "int | None" = None,
    cache_dir: Any = None,
    verbose: bool = False,
) -> OptimalSynthesizer:
    """The concrete facade, for infrastructure that needs the full
    surface (warm handles, databases, ``size_or_bound``)."""
    return OptimalSynthesizer(
        n_wires=n_wires,
        k=k,
        max_list_size=max_list_size,
        cache_dir=cache_dir,
        verbose=verbose,
    )


class OptimalEngine(Engine):
    """Provably gate-minimal synthesis for n <= 4 (reach L = k + m)."""

    name = "optimal"

    def __init__(
        self,
        n_wires: int = 4,
        k: int = 6,
        max_list_size: "int | None" = None,
        cache_dir: Any = None,
        verbose: bool = False,
        handle: "SynthesisHandle | None" = None,
    ) -> None:
        # A warm handle (e.g. the daemon's own) rehydrates the engine
        # without rebuilding the BFS database; the other construction
        # parameters are then implied by the handle and ignored.
        if handle is not None:
            self.impl = OptimalSynthesizer.from_handle(handle)
        else:
            self.impl = make_optimal_synthesizer(
                n_wires=n_wires,
                k=k,
                max_list_size=max_list_size,
                cache_dir=cache_dir,
                verbose=verbose,
            )
        self.capabilities = EngineCapabilities(
            guarantee=GUARANTEE_OPTIMAL,
            max_wires=4,
            reach=f"optimal size <= L = {self.impl.max_size}",
            servable=True,
            cancellable=True,
        )

    def prepare(self) -> "OptimalEngine":
        self.impl.prepare()
        return self

    def handle(self) -> SynthesisHandle:
        """Warm, shareable handle (service daemon and worker pool)."""
        return self.impl.handle()

    def synthesize(self, request: SynthesisRequest) -> SynthesisResult:
        perm = request.permutation(self.impl.n_wires)
        started = time.perf_counter()
        # The racing engine threads a cooperative checkpoint through
        # ``options["cancel"]``; the scan calls it between A_i lists.
        cancel = request.options.get("cancel")
        with trace("engine.synthesize", engine=self.name):
            outcome = self.impl.search(perm, cancel=cancel)
        seconds = time.perf_counter() - started
        return SynthesisResult.from_circuit(
            self.name,
            outcome.circuit,
            perm.spec(),
            guarantee=GUARANTEE_OPTIMAL,
            seconds=seconds,
            extra={
                "lists_scanned": outcome.lists_scanned,
                "candidates_tested": outcome.candidates_tested,
            },
        )


def make_engine(
    n_wires: int = 4,
    k: int = 6,
    max_list_size: "int | None" = None,
    cache_dir: Any = None,
    verbose: bool = False,
    handle: "SynthesisHandle | None" = None,
) -> OptimalEngine:
    """Registry factory for the ``optimal`` engine."""
    return OptimalEngine(
        n_wires=n_wires,
        k=k,
        max_list_size=max_list_size,
        cache_dir=cache_dir,
        verbose=verbose,
        handle=handle,
    )


__all__ = ["OptimalEngine", "make_engine", "make_optimal_synthesizer"]
