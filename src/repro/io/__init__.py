"""Circuit file I/O: RevLib ``.real`` and OpenQASM 2.0."""

from repro.io.qasm import to_qasm, write_qasm
from repro.io.real_format import read_real, write_real

__all__ = ["read_real", "write_real", "to_qasm", "write_qasm"]
