"""OpenQASM 2.0 export for NCT circuits.

The paper's motivation is experimental quantum computing; OpenQASM is
the lingua franca for handing circuits to such systems.  NCT gates map
directly: NOT -> ``x``, CNOT -> ``cx``, Toffoli -> ``ccx``.  Toffoli-4
is emitted as ``c3x`` when ``allow_c3x`` is set (Qiskit's standard
library understands it), and otherwise decomposed into three ``ccx``
gates through one clean ancilla qubit appended after the data qubits.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.circuit import Circuit
from repro.core.gates import Gate
from repro.errors import InvalidCircuitError


def _gate_line(gate: Gate, register: str) -> str:
    wires = [*gate.controls, gate.target]
    operands = ", ".join(f"{register}[{w}]" for w in wires)
    mnemonic = {0: "x", 1: "cx", 2: "ccx", 3: "c3x"}.get(len(gate.controls))
    if mnemonic is None:
        raise InvalidCircuitError(
            f"no QASM mnemonic for {len(gate.controls)} controls"
        )
    return f"{mnemonic} {operands};"


def _tof4_decomposition(gate: Gate, ancilla: int, register: str) -> list[str]:
    """TOF4 via one clean ancilla: ccx(c1,c2,anc); ccx(anc,c3,t); undo.

    The ancilla returns to |0>, so consecutive TOF4 gates may share it.
    """
    c1, c2, c3 = gate.controls
    target = gate.target
    lines = [
        f"ccx {register}[{c1}], {register}[{c2}], {register}[{ancilla}];",
        f"ccx {register}[{ancilla}], {register}[{c3}], {register}[{target}];",
        f"ccx {register}[{c1}], {register}[{c2}], {register}[{ancilla}];",
    ]
    return lines


def to_qasm(
    circuit: Circuit, allow_c3x: bool = True, comment: str = ""
) -> str:
    """Render a circuit as an OpenQASM 2.0 program.

    Args:
        circuit: The NCT circuit.
        allow_c3x: Emit ``c3x`` for Toffoli-4 (understood by Qiskit's
            standard library); when False, decompose through one clean
            ancilla qubit appended after the data qubits.
        comment: Optional leading comment text.
    """
    needs_ancilla = (not allow_c3x) and any(
        len(g.controls) == 3 for g in circuit.gates
    )
    n_qubits = circuit.n_wires + (1 if needs_ancilla else 0)
    lines = []
    if comment:
        for row in comment.splitlines():
            lines.append(f"// {row}")
    lines.append("OPENQASM 2.0;")
    lines.append('include "qelib1.inc";')
    lines.append(f"qreg q[{n_qubits}];")
    for gate in circuit.gates:
        if len(gate.controls) == 3 and not allow_c3x:
            lines.extend(_tof4_decomposition(gate, circuit.n_wires, "q"))
        else:
            lines.append(_gate_line(gate, "q"))
    return "\n".join(lines) + "\n"


def write_qasm(
    circuit: Circuit, path, allow_c3x: bool = True, comment: str = ""
) -> None:
    """Write :func:`to_qasm` output to a file."""
    Path(path).write_text(
        to_qasm(circuit, allow_c3x=allow_c3x, comment=comment),
        encoding="ascii",
    )
