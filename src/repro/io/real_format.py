"""Reader/writer for the RevLib ``.real`` circuit format.

``.real`` is the interchange format of the reversible-logic benchmark
community (the paper's benchmark functions are distributed in it).  The
subset implemented here covers Toffoli-family circuits::

    # comment
    .version 2.0
    .numvars 4
    .variables a b c d
    .begin
    t1 a          # NOT(a)
    t2 a b        # CNOT(a,b)
    t3 a b c      # TOF(a,b,c)
    t4 a b c d    # TOF4(a,b,c,d)
    .end

``tN`` lists N - 1 control lines followed by the target line.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.circuit import Circuit
from repro.core.gates import Gate
from repro.errors import InvalidCircuitError


def write_real(circuit: Circuit, path: "str | Path", comment: str = "") -> None:
    """Serialize a circuit to a ``.real`` file."""
    from repro.core.gates import WIRE_NAMES

    names = [WIRE_NAMES[w] for w in range(circuit.n_wires)]
    lines = []
    if comment:
        for row in comment.splitlines():
            lines.append(f"# {row}")
    lines.append(".version 2.0")
    lines.append(f".numvars {circuit.n_wires}")
    lines.append(".variables " + " ".join(names))
    lines.append(".begin")
    for gate in circuit.gates:
        wires = [*gate.controls, gate.target]
        lines.append(
            f"t{len(wires)} " + " ".join(names[w] for w in wires)
        )
    lines.append(".end")
    Path(path).write_text("\n".join(lines) + "\n", encoding="ascii")


def read_real(path: "str | Path") -> Circuit:
    """Parse a ``.real`` file into a :class:`Circuit`.

    Raises :class:`InvalidCircuitError` on malformed input or gate kinds
    outside the Toffoli family.
    """
    n_wires: "int | None" = None
    name_to_wire: dict[str, int] = {}
    gates: list[Gate] = []
    in_body = False
    for raw in Path(path).read_text(encoding="ascii").splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("."):
            directive, *rest = line.split()
            if directive == ".numvars":
                n_wires = int(rest[0])
            elif directive == ".variables":
                name_to_wire = {name: i for i, name in enumerate(rest)}
            elif directive == ".begin":
                in_body = True
            elif directive == ".end":
                in_body = False
            # .inputs/.outputs/.constants/.garbage are accepted and ignored.
            continue
        if not in_body:
            continue
        kind, *wires = line.split()
        if not kind.startswith("t"):
            raise InvalidCircuitError(
                f"unsupported gate kind in .real file: {kind!r}"
            )
        try:
            arity = int(kind[1:])
        except ValueError as exc:
            raise InvalidCircuitError(f"bad gate kind: {kind!r}") from exc
        if arity != len(wires):
            raise InvalidCircuitError(
                f"gate {kind} expects {arity} lines, got {len(wires)}"
            )
        try:
            indices = [name_to_wire[w] for w in wires]
        except KeyError as exc:
            raise InvalidCircuitError(f"unknown line name: {exc}") from exc
        gates.append(Gate(controls=tuple(indices[:-1]), target=indices[-1]))
    if n_wires is None:
        if not name_to_wire:
            raise InvalidCircuitError(".real file declares no variables")
        n_wires = len(name_to_wire)
    return Circuit(gates=tuple(gates), n_wires=n_wires)
