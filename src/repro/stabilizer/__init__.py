"""Stabilizer-circuit synthesis (the paper's Section 5 future work).

"Extending techniques reported in this paper to the synthesis of optimal
stabilizer circuits ... may become a very useful tool in optimizing
error correction circuits."  This subpackage takes the first concrete
steps: a from-scratch symplectic tableau representation of Clifford
operators (à la Aaronson–Gottesman, the paper's reference [1]) and an
exhaustive breadth-first synthesis of *optimal* Clifford circuits over
the {H, S, S†, CNOT} generator set for one and two qubits.
"""

from repro.stabilizer.tableau import CliffordTableau
from repro.stabilizer.synthesis import (
    CliffordSynthesizer,
    clifford_group_size,
)

__all__ = ["CliffordTableau", "CliffordSynthesizer", "clifford_group_size"]
