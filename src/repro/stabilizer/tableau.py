"""Symplectic tableau representation of Clifford operators.

A Clifford unitary on ``n`` qubits is determined (up to global phase) by
its action by conjugation on the Pauli generators X₁..Xₙ, Z₁..Zₙ.  Each
image is a signed Pauli, encoded as an (x-bits, z-bits, sign) triple;
the whole operator is a 2n×2n binary symplectic matrix plus a sign
vector -- the *tableau* of Aaronson & Gottesman (the paper's reference
[1] for the claim that linear reversible circuits dominate error
correction).

The composition and inversion laws implemented here are the standard
ones; correctness is pinned by unit tests against the defining relations
(H² = I, S⁴ = I, HSHSHS ∝ I, CNOT conjugation rules).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError


class StabilizerError(ReproError):
    """Raised on malformed tableaux or unsupported operations."""


@dataclass(frozen=True)
class PauliTerm:
    """A signed Pauli operator ±(X^x Z^z) in symplectic form.

    Attributes:
        x: Bitmask of qubits with an X factor.
        z: Bitmask of qubits with a Z factor.
        sign: 0 for +, 1 for −.
    """

    x: int
    z: int
    sign: int

    def commutes_with(self, other: "PauliTerm") -> bool:
        """Symplectic inner product: True iff the Paulis commute."""
        cross = bin(self.x & other.z).count("1") + bin(
            self.z & other.x
        ).count("1")
        return cross % 2 == 0

    def label(self, n_qubits: int) -> str:
        """Human-readable label, e.g. ``-XZ`` (qubit 0 leftmost)."""
        letters = []
        for qubit in range(n_qubits):
            has_x = (self.x >> qubit) & 1
            has_z = (self.z >> qubit) & 1
            letters.append("IXZY"[has_x | (has_z << 1)])
        return ("-" if self.sign else "+") + "".join(letters)


def _multiply_quarter(
    x1: int, z1: int, q1: int, x2: int, z2: int, q2: int
) -> tuple[int, int, int]:
    """Product of two Paulis in quarter-phase form.

    A Pauli is ``i^q · P(x, z)`` where ``P`` has literal I/X/Z/Y factors
    per qubit ((1,1) means Y).  Returns ``(x, z, q)`` of the product with
    ``q`` modulo 4; the Aaronson--Gottesman ``g`` function supplies the
    per-qubit reordering phase.
    """
    phase = q1 + q2
    qubit_mask = x1 | z1 | x2 | z2
    qubit = 0
    while qubit_mask >> qubit:
        ax, az = (x1 >> qubit) & 1, (z1 >> qubit) & 1
        bx, bz = (x2 >> qubit) & 1, (z2 >> qubit) & 1
        phase += _phase_g(ax, az, bx, bz)
        qubit += 1
    return x1 ^ x2, z1 ^ z2, phase % 4


def _multiply_paulis(a: PauliTerm, b: PauliTerm) -> PauliTerm:
    """Product of two signed Paulis (must come out real-signed)."""
    x, z, quarter = _multiply_quarter(
        a.x, a.z, 2 * a.sign, b.x, b.z, 2 * b.sign
    )
    if quarter % 2 != 0:
        raise StabilizerError("non-real phase in Pauli product")
    return PauliTerm(x=x, z=z, sign=(quarter // 2) % 2)


def _phase_g(x1: int, z1: int, x2: int, z2: int) -> int:
    """Aaronson-Gottesman g: the power of i from multiplying one-qubit
    Paulis (X^x1 Z^z1)·(X^x2 Z^z2)."""
    if x1 == 0 and z1 == 0:
        return 0
    if x1 == 1 and z1 == 1:  # Y = iXZ
        return z2 - x2
    if x1 == 1:  # X
        return z2 * (2 * x2 - 1)
    return x2 * (1 - 2 * z2)  # Z


@dataclass(frozen=True)
class CliffordTableau:
    """A Clifford operator as images of the Pauli generators.

    Attributes:
        n_qubits: Number of qubits.
        images: Tuple of 2n PauliTerms: entry ``i < n`` is the image of
            Xᵢ under conjugation, entry ``n + i`` the image of Zᵢ.
    """

    n_qubits: int
    images: tuple[PauliTerm, ...]

    def __post_init__(self):
        if len(self.images) != 2 * self.n_qubits:
            raise StabilizerError("tableau needs 2n Pauli images")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def identity(n_qubits: int) -> "CliffordTableau":
        images = [
            PauliTerm(x=1 << q, z=0, sign=0) for q in range(n_qubits)
        ] + [PauliTerm(x=0, z=1 << q, sign=0) for q in range(n_qubits)]
        return CliffordTableau(n_qubits=n_qubits, images=tuple(images))

    @staticmethod
    def hadamard(qubit: int, n_qubits: int) -> "CliffordTableau":
        """H: X ↦ Z, Z ↦ X."""
        tableau = CliffordTableau.identity(n_qubits)
        images = list(tableau.images)
        images[qubit] = PauliTerm(x=0, z=1 << qubit, sign=0)
        images[n_qubits + qubit] = PauliTerm(x=1 << qubit, z=0, sign=0)
        return CliffordTableau(n_qubits=n_qubits, images=tuple(images))

    @staticmethod
    def phase_gate(qubit: int, n_qubits: int) -> "CliffordTableau":
        """S: X ↦ Y (= +XZ here), Z ↦ Z."""
        tableau = CliffordTableau.identity(n_qubits)
        images = list(tableau.images)
        images[qubit] = PauliTerm(x=1 << qubit, z=1 << qubit, sign=0)
        return CliffordTableau(n_qubits=n_qubits, images=tuple(images))

    @staticmethod
    def phase_gate_dagger(qubit: int, n_qubits: int) -> "CliffordTableau":
        """S†: X ↦ −Y, Z ↦ Z."""
        tableau = CliffordTableau.identity(n_qubits)
        images = list(tableau.images)
        images[qubit] = PauliTerm(x=1 << qubit, z=1 << qubit, sign=1)
        return CliffordTableau(n_qubits=n_qubits, images=tuple(images))

    @staticmethod
    def cnot(control: int, target: int, n_qubits: int) -> "CliffordTableau":
        """CNOT: X_c ↦ X_c X_t, Z_t ↦ Z_c Z_t, X_t and Z_c fixed."""
        if control == target:
            raise StabilizerError("control equals target")
        tableau = CliffordTableau.identity(n_qubits)
        images = list(tableau.images)
        images[control] = PauliTerm(
            x=(1 << control) | (1 << target), z=0, sign=0
        )
        images[n_qubits + target] = PauliTerm(
            x=0, z=(1 << control) | (1 << target), sign=0
        )
        return CliffordTableau(n_qubits=n_qubits, images=tuple(images))

    # ------------------------------------------------------------------
    # Group operations
    # ------------------------------------------------------------------
    def apply_to_pauli(self, pauli: PauliTerm) -> PauliTerm:
        """Image of an arbitrary signed Pauli under conjugation.

        The input is decomposed as ``i^k · Π X-factors · Π Z-factors``
        with one ``i`` per Y factor (Y = iXZ); images of the factors are
        multiplied in quarter-phase form, and the result is guaranteed
        real-signed because conjugation preserves Hermiticity.
        """
        x = z = 0
        quarter = 2 * pauli.sign
        # One +i for every Y factor in the input.
        quarter += bin(pauli.x & pauli.z).count("1")
        for qubit in range(self.n_qubits):
            if (pauli.x >> qubit) & 1:
                image = self.images[qubit]
                x, z, quarter = _multiply_quarter(
                    x, z, quarter, image.x, image.z, 2 * image.sign
                )
        for qubit in range(self.n_qubits):
            if (pauli.z >> qubit) & 1:
                image = self.images[self.n_qubits + qubit]
                x, z, quarter = _multiply_quarter(
                    x, z, quarter, image.x, image.z, 2 * image.sign
                )
        # The accumulator is i^quarter · W(x, z) with W already in literal
        # I/X/Z/Y form (the g-function convention), so no further Y
        # adjustment applies; Hermiticity forces an even quarter-phase.
        quarter %= 4
        if quarter % 2 != 0:
            raise StabilizerError("conjugation produced a non-real phase")
        return PauliTerm(x=x, z=z, sign=quarter // 2)

    def then(self, other: "CliffordTableau") -> "CliffordTableau":
        """Sequential composition: apply ``self`` first, then ``other``.

        The conjugation action composes contravariantly: the image of a
        generator under (self then other) is other's image of self's
        image.
        """
        if other.n_qubits != self.n_qubits:
            raise StabilizerError("qubit-count mismatch")
        images = tuple(
            other.apply_to_pauli(image) for image in self.images
        )
        return CliffordTableau(n_qubits=self.n_qubits, images=images)

    def inverse(self) -> "CliffordTableau":
        """The inverse Clifford (solves the 2n×2n symplectic system).

        Implemented by brute substitution: the inverse tableau's images
        are the unique signed Paulis that ``self`` maps onto each
        generator.  For the small n used here a Gaussian solve over the
        symplectic matrix is unnecessary; we invert via composition
        search over generators of the image space instead.
        """
        n = self.n_qubits
        # Build the 2n x 2n binary matrix of the symplectic action.
        size = 2 * n
        rows = []
        for image in self.images:
            rows.append(_pauli_to_vector(image, n))
        # Invert the matrix over GF(2).
        from repro.synth.gf2 import matrix_inverse

        matrix = tuple(
            sum(rows[col][bit] << col for col in range(size))
            for bit in range(size)
        )
        inverse_matrix = matrix_inverse(matrix)
        images = []
        for row in range(size):
            x = z = 0
            for col in range(size):
                if (inverse_matrix[col] >> row) & 1:
                    if col < n:
                        x |= 1 << col
                    else:
                        z |= 1 << (col - n)
            candidate = PauliTerm(x=x, z=z, sign=0)
            # Fix the sign so that self(candidate) == generator exactly.
            mapped = self.apply_to_pauli(candidate)
            target = _generator(row, n)
            if (mapped.x, mapped.z) != (target.x, target.z):
                raise StabilizerError("symplectic inversion failed")
            sign = mapped.sign ^ target.sign
            images.append(PauliTerm(x=x, z=z, sign=sign))
        return CliffordTableau(n_qubits=n, images=tuple(images))

    def is_identity(self) -> bool:
        return self == CliffordTableau.identity(self.n_qubits)

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def key(self) -> int:
        """Compact integer encoding (hashable, order-stable)."""
        value = 0
        bits_per_mask = self.n_qubits
        for image in self.images:
            value = (value << bits_per_mask) | image.x
            value = (value << bits_per_mask) | image.z
            value = (value << 1) | image.sign
        return value

    def labels(self) -> list[str]:
        """Readable generator-image table, X₁.., then Z₁.. ."""
        return [image.label(self.n_qubits) for image in self.images]


def _pauli_to_vector(pauli: PauliTerm, n_qubits: int) -> list[int]:
    bits = []
    for qubit in range(n_qubits):
        bits.append((pauli.x >> qubit) & 1)
    for qubit in range(n_qubits):
        bits.append((pauli.z >> qubit) & 1)
    return bits


def _generator(index: int, n_qubits: int) -> PauliTerm:
    if index < n_qubits:
        return PauliTerm(x=1 << index, z=0, sign=0)
    return PauliTerm(x=0, z=1 << (index - n_qubits), sign=0)
