"""Optimal Clifford-circuit synthesis by exhaustive BFS (paper §5 goal).

The same search-from-identity strategy as Algorithm 2, transplanted to
the Clifford group over the generator set {H, S, S†, CNOT}: breadth-
first expansion assigns every group element its exact minimal gate
count, and circuits are reconstructed by peeling with inverse
generators (S is not an involution, so peeling composes with S†).

Group sizes (modulo global phase): |C₁| = 24, |C₂| = 11,520 -- small
enough to enumerate completely, which is precisely the regime the paper
proposes attacking "coupled with peephole optimization" for error-
correction circuits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SynthesisError
from repro.stabilizer.tableau import CliffordTableau


def clifford_group_size(n_qubits: int) -> int:
    """|C_n| modulo global phase: 2^(n²+2n) · prod (4^j − 1)."""
    size = 1 << (n_qubits * n_qubits + 2 * n_qubits)
    for j in range(1, n_qubits + 1):
        size *= (1 << (2 * j)) - 1
    return size


@dataclass(frozen=True)
class CliffordGate:
    """A generator with its label and tableau."""

    label: str
    tableau: CliffordTableau
    inverse_label: str


def clifford_generators(n_qubits: int) -> list[CliffordGate]:
    """H, S, S† on every qubit; CNOT on every ordered pair."""
    gates: list[CliffordGate] = []
    for qubit in range(n_qubits):
        gates.append(
            CliffordGate(
                label=f"H(q{qubit})",
                tableau=CliffordTableau.hadamard(qubit, n_qubits),
                inverse_label=f"H(q{qubit})",
            )
        )
        gates.append(
            CliffordGate(
                label=f"S(q{qubit})",
                tableau=CliffordTableau.phase_gate(qubit, n_qubits),
                inverse_label=f"Sdg(q{qubit})",
            )
        )
        gates.append(
            CliffordGate(
                label=f"Sdg(q{qubit})",
                tableau=CliffordTableau.phase_gate_dagger(qubit, n_qubits),
                inverse_label=f"S(q{qubit})",
            )
        )
    for control in range(n_qubits):
        for target in range(n_qubits):
            if control != target:
                gates.append(
                    CliffordGate(
                        label=f"CNOT(q{control},q{target})",
                        tableau=CliffordTableau.cnot(control, target, n_qubits),
                        inverse_label=f"CNOT(q{control},q{target})",
                    )
                )
    return gates


class CliffordSynthesizer:
    """Exhaustive optimal synthesis over the Clifford group (n ≤ 2).

    Builds the full gate-count table on first use (instant for n = 1,
    about a second for n = 2) and synthesizes by peeling.
    """

    def __init__(self, n_qubits: int):
        if n_qubits > 2:
            raise SynthesisError(
                "exhaustive Clifford synthesis is implemented for n <= 2 "
                f"(|C_3| = {clifford_group_size(3):,} is out of scope)"
            )
        self.n_qubits = n_qubits
        self.generators = clifford_generators(n_qubits)
        self._sizes: "dict[int, int] | None" = None
        self._elements: "dict[int, CliffordTableau] | None" = None

    # ------------------------------------------------------------------
    @property
    def sizes(self) -> dict[int, int]:
        """Map tableau key -> optimal gate count (whole group)."""
        if self._sizes is None:
            self._build()
        return self._sizes

    def _build(self) -> None:
        identity = CliffordTableau.identity(self.n_qubits)
        sizes = {identity.key(): 0}
        elements = {identity.key(): identity}
        frontier = [identity]
        size = 0
        while frontier:
            size += 1
            next_frontier: list[CliffordTableau] = []
            for element in frontier:
                for gate in self.generators:
                    candidate = element.then(gate.tableau)
                    key = candidate.key()
                    if key not in sizes:
                        sizes[key] = size
                        elements[key] = candidate
                        next_frontier.append(candidate)
            frontier = next_frontier
        expected = clifford_group_size(self.n_qubits)
        if len(sizes) != expected:
            raise SynthesisError(
                f"Clifford BFS covered {len(sizes)} of {expected} elements; "
                "generator set incomplete"
            )
        self._sizes = sizes
        self._elements = elements

    # ------------------------------------------------------------------
    def size(self, tableau: CliffordTableau) -> int:
        """Optimal gate count of a Clifford operator."""
        try:
            return self.sizes[tableau.key()]
        except KeyError as exc:
            raise SynthesisError("tableau is not a valid Clifford") from exc

    def synthesize(self, tableau: CliffordTableau) -> list[str]:
        """A provably minimal generator sequence (labels, in order).

        Peeling: if the minimal circuit of f ends with gate g, then
        f·g⁻¹ sits exactly one level lower.
        """
        total = self.size(tableau)
        labels: list[str] = []
        current = tableau
        remaining = total
        inverses = {
            gate.label: next(
                g for g in self.generators if g.label == gate.inverse_label
            )
            for gate in self.generators
        }
        while remaining > 0:
            for gate in self.generators:
                rest = current.then(inverses[gate.label].tableau)
                if self.sizes.get(rest.key()) == remaining - 1:
                    labels.append(gate.label)
                    current = rest
                    remaining -= 1
                    break
            else:
                raise SynthesisError("Clifford table inconsistent")
        labels.reverse()
        # Verify by recomposition.
        check = CliffordTableau.identity(self.n_qubits)
        by_label = {gate.label: gate for gate in self.generators}
        for label in labels:
            check = check.then(by_label[label].tableau)
        if check != tableau:
            raise SynthesisError("peeled Clifford circuit fails verification")
        return labels

    def distribution(self) -> list[int]:
        """Number of Clifford elements per optimal gate count."""
        counts: dict[int, int] = {}
        for size in self.sizes.values():
            counts[size] = counts.get(size, 0) + 1
        return [counts.get(s, 0) for s in range(max(counts) + 1)]
