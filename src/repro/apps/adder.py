"""The 1-bit full adder of the paper's motivating example (Figure 2).

"The famous Shor's integer factoring algorithm is dominated by adders
like this" -- the paper contrasts a suboptimal adder circuit with the
optimal 4-gate implementation.  The reversible adder takes inputs
(a, b, c, d) where ``c`` doubles as carry-in and ``d`` (normally 0) is a
garbage/ancilla line, and produces

    a' = a
    b' = a ⊕ b
    c' = a ⊕ b ⊕ c        (the sum)
    d' = d ⊕ maj(a, b, c)  (the carry-out)

This is exactly the ``rd32`` benchmark of Table 6, whose optimality at
4 gates the paper proves.
"""

from __future__ import annotations

from repro.core.circuit import Circuit
from repro.core.permutation import Permutation


def full_adder_permutation() -> Permutation:
    """The 4-bit reversible full-adder specification (= rd32 in Table 6)."""
    values = []
    for x in range(16):
        a, b, c, d = (x >> 0) & 1, (x >> 1) & 1, (x >> 2) & 1, (x >> 3) & 1
        total = a + b + c
        sum_bit = total & 1
        carry = (total >> 1) & 1
        y = a | ((a ^ b) << 1) | (sum_bit << 2) | ((d ^ carry) << 3)
        values.append(y)
    return Permutation.from_values(values)


def optimal_adder_circuit() -> Circuit:
    """The 4-gate optimal adder of Figure 2(b) (the paper's rd32 circuit)."""
    return Circuit.parse("TOF(a,b,d) CNOT(a,b) TOF(b,c,d) CNOT(b,c)", 4)


def suboptimal_adder_circuit() -> Circuit:
    """A textbook-style suboptimal adder in the spirit of Figure 2(a).

    Computes the majority with three Toffoli gates (one per input pair)
    and the sum with a chain of CNOTs -- six gates where four suffice.
    """
    return Circuit.parse(
        "TOF(a,b,d) TOF(a,c,d) TOF(b,c,d) CNOT(b,c) CNOT(a,c) CNOT(a,b)", 4
    )
