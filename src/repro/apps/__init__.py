"""Applications built on the optimal synthesizer."""

from repro.apps.adder import (
    full_adder_permutation,
    optimal_adder_circuit,
    suboptimal_adder_circuit,
)
from repro.apps.peephole import PeepholeOptimizer, PeepholeReport

__all__ = [
    "full_adder_permutation",
    "optimal_adder_circuit",
    "suboptimal_adder_circuit",
    "PeepholeOptimizer",
    "PeepholeReport",
]
