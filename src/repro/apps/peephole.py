"""Peephole optimization of larger circuits via optimal 4-bit resynthesis.

The paper highlights this as a primary application: "The algorithm could
easily be integrated as part of peephole optimization, such as the one
presented in [13]."  Given a circuit on any number of wires, the
optimizer scans for maximal windows of consecutive gates whose combined
support fits in at most four wires, resynthesizes each window optimally,
and substitutes the result whenever it is strictly smaller.  Passes
repeat until a fixed point.

Every replacement is functionally verified before being committed, so
the optimizer is safe by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.circuit import Circuit
from repro.core.gates import Gate
from repro.core.permutation import Permutation
from repro.errors import SizeLimitExceededError


@dataclass(frozen=True)
class PeepholeReport:
    """Summary of one optimization run.

    Attributes:
        original: The input circuit.
        optimized: The resulting circuit (same function, <= gates).
        windows_examined: Candidate windows considered.
        windows_replaced: Windows where the optimal resynthesis won.
        passes: Fixed-point iterations performed.
    """

    original: Circuit
    optimized: Circuit
    windows_examined: int
    windows_replaced: int
    passes: int

    @property
    def gates_saved(self) -> int:
        return self.original.gate_count - self.optimized.gate_count


class PeepholeOptimizer:
    """Windowed optimal resynthesis over <= ``window_wires`` wires.

    Args:
        synthesizer: An :class:`repro.synth.OptimalSynthesizer` (or any
            object with ``synthesize(values) -> Circuit``, ``n_wires``,
            and circuits raising SizeLimitExceededError beyond reach).
        window_wires: Maximal wire count of a window (<= synthesizer's
            width; default uses it fully).
        max_window_gates: Maximal gate count of a window.  Defaults to
            the synthesizer's reach L, which makes every window provably
            resynthesizable (a product of L gates has size <= L).
    """

    def __init__(
        self,
        synthesizer,
        window_wires: "int | None" = None,
        max_window_gates: "int | None" = None,
    ):
        self.synthesizer = synthesizer
        self.window_wires = window_wires or synthesizer.n_wires
        if self.window_wires > synthesizer.n_wires:
            raise ValueError(
                "window cannot be wider than the synthesizer's wire count"
            )
        if max_window_gates is None:
            max_window_gates = getattr(synthesizer, "max_size", 8)
        self.max_window_gates = max_window_gates

    # ------------------------------------------------------------------
    def optimize(self, circuit: Circuit, max_passes: int = 10) -> PeepholeReport:
        """Run passes until no window improves (or ``max_passes``)."""
        original = circuit
        examined = replaced = passes = 0
        for _ in range(max_passes):
            passes += 1
            new_circuit, pass_examined, pass_replaced = self._one_pass(circuit)
            examined += pass_examined
            replaced += pass_replaced
            if new_circuit.gate_count == circuit.gate_count:
                circuit = new_circuit
                break
            circuit = new_circuit
        if (
            circuit.truth_table() != original.truth_table()
            or circuit.n_wires != original.n_wires
        ):
            raise AssertionError("peephole optimization changed the function")
        return PeepholeReport(
            original=original,
            optimized=circuit,
            windows_examined=examined,
            windows_replaced=replaced,
            passes=passes,
        )

    # ------------------------------------------------------------------
    def _one_pass(self, circuit: Circuit) -> tuple[Circuit, int, int]:
        gates = list(circuit.gates)
        output: list[Gate] = []
        examined = replaced = 0
        index = 0
        while index < len(gates):
            window, span = self._grab_window(gates, index)
            if not window:
                # A single gate wider than the window: pass it through.
                output.append(gates[index])
                index += 1
                continue
            if len(window) > 1:
                examined += 1
                improved = self._resynthesize(window, circuit.n_wires)
                if improved is not None and len(improved) < len(window):
                    replaced += 1
                    window = improved
            output.extend(window)
            index += span
        return Circuit(gates=tuple(output), n_wires=circuit.n_wires), examined, replaced

    def _grab_window(
        self, gates: list[Gate], start: int
    ) -> tuple[list[Gate], int]:
        """The longest run of gates from ``start`` fitting in the window."""
        support: set[int] = set()
        window: list[Gate] = []
        index = start
        while index < len(gates) and len(window) < self.max_window_gates:
            candidate = support | set(gates[index].support)
            if len(candidate) > self.window_wires:
                break
            support = candidate
            window.append(gates[index])
            index += 1
        return window, max(1, index - start)

    def _resynthesize(
        self, window: list[Gate], n_wires: int
    ) -> "list[Gate] | None":
        """Optimally resynthesize a window; None when out of reach."""
        wires = sorted(set().union(*(g.support for g in window)))
        wire_map = {wire: local for local, wire in enumerate(wires)}
        width = self.synthesizer.n_wires
        local_gates = [
            Gate(
                controls=tuple(wire_map[c] for c in gate.controls),
                target=wire_map[gate.target],
            )
            for gate in window
        ]
        local_circuit = Circuit(gates=tuple(local_gates), n_wires=width)
        perm = Permutation(local_circuit.to_word(), width)
        try:
            optimal = self.synthesizer.synthesize(perm)
        except SizeLimitExceededError:
            return None
        inverse_map = {local: wire for wire, local in wire_map.items()}
        remapped = []
        for gate in optimal.gates:
            # Optimal circuits may use window wires the original gates did
            # not touch, but never wires outside the window width; gates on
            # unmapped locals stay on unused globals only if they exist.
            try:
                remapped.append(
                    Gate(
                        controls=tuple(inverse_map[c] for c in gate.controls),
                        target=inverse_map[gate.target],
                    )
                )
            except KeyError:
                return None  # used a scratch wire the window does not have
        return remapped
