"""Random-number substrate: Mersenne twister and permutation sampling."""

from repro.rng.mt19937 import MersenneTwister
from repro.rng.sampling import PermutationSampler, random_circuit

__all__ = ["MersenneTwister", "PermutationSampler", "random_circuit"]
