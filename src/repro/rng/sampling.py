"""Sampling of random permutations and circuits.

The paper's random-permutation experiment (Section 4.1) draws uniformly
distributed permutations with the Mersenne twister; we reproduce this
with an unbiased Fisher-Yates shuffle over ``range(2**n)``.
"""

from __future__ import annotations

import numpy as np

from repro.core import packed
from repro.core.circuit import Circuit
from repro.core.gates import all_gates
from repro.core.permutation import Permutation
from repro.rng.mt19937 import MersenneTwister


class PermutationSampler:
    """Uniform sampler of n-bit reversible functions.

    Args:
        n_wires: Wire count (2..4).
        seed: Mersenne-twister seed (reproducible by default).
    """

    def __init__(self, n_wires: int, seed: int = 5489):
        self.n_wires = n_wires
        self.rng = MersenneTwister(seed)

    def shuffle(self, items: list) -> None:
        """Expose the underlying shuffle (duck-typed ``random.Random``)."""
        self.rng.shuffle(items)

    def sample(self) -> Permutation:
        """One uniformly random permutation."""
        return Permutation.random(self.n_wires, self.rng)

    def sample_word(self) -> int:
        """One uniformly random packed word."""
        return packed.random_word(self.n_wires, self.rng)

    def sample_words(self, count: int) -> np.ndarray:
        """Array of ``count`` random packed words."""
        return np.fromiter(
            (self.sample_word() for _ in range(count)),
            dtype=np.uint64,
            count=count,
        )


def random_circuit(
    n_wires: int, n_gates: int, rng: "MersenneTwister | None" = None
) -> Circuit:
    """A circuit of ``n_gates`` gates drawn uniformly from the NCT library.

    Useful for generating peephole-optimization inputs and for the
    hard-permutation extension search (Section 4.5).
    """
    if rng is None:
        rng = MersenneTwister()
    library = all_gates(n_wires)
    gates = tuple(library[rng.next_below(len(library))] for _ in range(n_gates))
    return Circuit(gates=gates, n_wires=n_wires)
