"""MT19937 Mersenne twister, implemented from scratch.

The paper generates its 10,000,000 random test permutations "using the
Mersenne twister random number generator" (Matsumoto & Nishimura,
reference [7]).  This is a faithful implementation of the reference
``genrand_int32`` generator with the standard 2002 seeding
(``init_genrand``), validated in the tests against the published output
sequence for the default seed 5489.
"""

from __future__ import annotations

_N = 624
_M = 397
_MATRIX_A = 0x9908B0DF
_UPPER_MASK = 0x80000000
_LOWER_MASK = 0x7FFFFFFF
_MASK32 = 0xFFFFFFFF


class MersenneTwister:
    """The classic 32-bit MT19937 generator.

    Args:
        seed: 32-bit seed, defaulting to the reference value 5489.
    """

    def __init__(self, seed: int = 5489):
        self._mt = [0] * _N
        self._index = _N
        self.seed(seed)

    def seed(self, seed: int) -> None:
        """Re-seed with ``init_genrand`` from the 2002 reference code."""
        mt = self._mt
        mt[0] = seed & _MASK32
        for i in range(1, _N):
            mt[i] = (1812433253 * (mt[i - 1] ^ (mt[i - 1] >> 30)) + i) & _MASK32
        self._index = _N

    def _generate(self) -> None:
        mt = self._mt
        for i in range(_N):
            y = (mt[i] & _UPPER_MASK) | (mt[(i + 1) % _N] & _LOWER_MASK)
            value = mt[(i + _M) % _N] ^ (y >> 1)
            if y & 1:
                value ^= _MATRIX_A
            mt[i] = value
        self._index = 0

    def next_uint32(self) -> int:
        """Next raw 32-bit output (``genrand_int32``)."""
        if self._index >= _N:
            self._generate()
        y = self._mt[self._index]
        self._index += 1
        y ^= y >> 11
        y ^= (y << 7) & 0x9D2C5680
        y ^= (y << 15) & 0xEFC60000
        y ^= y >> 18
        return y & _MASK32

    def next_uint64(self) -> int:
        """Two 32-bit draws glued into a 64-bit value (high word first)."""
        high = self.next_uint32()
        return (high << 32) | self.next_uint32()

    def next_below(self, bound: int) -> int:
        """Uniform integer in ``[0, bound)`` via rejection sampling.

        Rejection keeps the distribution exactly uniform, which matters
        for the unbiased Fisher-Yates shuffle used to draw permutations.
        """
        if bound <= 0:
            raise ValueError(f"bound must be positive, got {bound}")
        if bound > (1 << 32):
            raise ValueError(f"bound too large for a 32-bit draw: {bound}")
        # Largest multiple of `bound` not exceeding 2**32.
        limit = (1 << 32) - ((1 << 32) % bound)
        while True:
            draw = self.next_uint32()
            if draw < limit:
                return draw % bound

    def random(self) -> float:
        """Float in [0, 1) with 32 bits of precision (``genrand_real2``)."""
        return self.next_uint32() / 4294967296.0

    def shuffle(self, items: list) -> None:
        """In-place unbiased Fisher-Yates shuffle."""
        for i in range(len(items) - 1, 0, -1):
            j = self.next_below(i + 1)
            items[i], items[j] = items[j], items[i]
