"""Exception hierarchy for the repro library.

All library-specific errors derive from :class:`ReproError` so that callers
can catch everything raised by this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class InvalidPermutationError(ReproError, ValueError):
    """Raised when a value sequence or packed word is not a permutation."""


class InvalidGateError(ReproError, ValueError):
    """Raised when a gate specification is malformed (bad target/controls)."""


class InvalidCircuitError(ReproError, ValueError):
    """Raised when a circuit description cannot be parsed or validated."""

class SynthesisError(ReproError):
    """Base class for synthesis failures."""


class SpecError(ReproError, ValueError):
    """Raised when a function-form spec (truth table, multi-output,
    affine/XOR, LUT -- see :mod:`repro.specs.ir`) is malformed, or when
    a valid spec cannot be embedded into the requested wire count.  The
    service protocol maps it to an ``invalid_spec`` envelope."""


class SizeLimitExceededError(SynthesisError):
    """Raised when a function provably requires more gates than the
    configured search bound ``L`` can reach.

    The search in Algorithm 1 of the paper is exhaustive up to ``L``; when
    it fails, the failure itself is a proof that ``size(f) > L``.  The
    proven lower bound is available as :attr:`lower_bound`.
    """

    def __init__(self, message: str, lower_bound: int) -> None:
        super().__init__(message)
        self.lower_bound = lower_bound


class DatabaseError(ReproError):
    """Raised on database construction, persistence, or lookup problems."""


class ServiceError(ReproError):
    """Base class for errors raised by the synthesis service layer."""


class ProtocolError(ServiceError):
    """Raised when a service request or response line is malformed.

    Carries the machine-readable error ``kind`` used in the wire-format
    error envelope (see :mod:`repro.service.protocol`).
    """

    def __init__(self, message: str, kind: str = "protocol") -> None:
        super().__init__(message)
        self.kind = kind


class ServiceShutdownError(ServiceError):
    """Raised when a request is submitted to a service that is draining
    or has already stopped."""


class ServiceConnectError(ServiceError):
    """Raised when a client cannot establish a connection to the daemon
    (refused, unreachable, DNS failure).  Always safe to retry: the
    request never reached the daemon."""


class ServiceTimeoutError(ServiceError):
    """Raised when a client-side socket deadline elapses.

    :attr:`phase` distinguishes the two failure modes: ``"connect"``
    (the TCP handshake never completed -- safe to retry) and ``"read"``
    (the request may have been delivered and even executed -- retry only
    idempotent operations).
    """

    def __init__(self, message: str, phase: str = "read") -> None:
        super().__init__(message)
        self.phase = phase


class WorkerPoolError(ServiceError):
    """Raised when the hard-query worker pool fails to produce results:
    a worker died mid-batch, the pool is broken, or a batch exceeded its
    supervision timeout.  The supervisor restarts the pool and requeues
    the batch before letting this escape to the dispatcher."""


class WorkCancelledError(ServiceError):
    """Raised at a cooperative cancellation checkpoint when the work
    item's :class:`repro.service.tasks.CancelToken` has been cancelled
    (deadline expiry, breaker trip, a race already won, or shutdown).

    Carries the cancellation ``reason`` so the layer that unwinds can
    tell a blown deadline from a lost race.  Lives in the foundation
    layer so the synth/analysis scan loops and the engines can raise or
    catch it without importing the service layer.
    """

    def __init__(self, message: str, reason: str = "cancelled") -> None:
        super().__init__(message)
        self.reason = reason


class UnsatisfiableError(ReproError):
    """Raised by the SAT subsystem when a formula is proven unsatisfiable
    and the caller asked for a model."""


class BenchDataError(ReproError):
    """Raised when a ``BENCH_*.json`` benchmark record is malformed:
    wrong schema tag, missing fields, or statistics of the wrong
    type/sign.  The perf regression gate treats a malformed record as a
    hard failure rather than silently passing."""
