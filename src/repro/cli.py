"""Command-line interface: ``repro <subcommand>`` (or ``python -m repro``).

Subcommands:

* ``synth SPEC``      -- synthesize a circuit (``--engine`` picks which).
* ``compile SPEC``    -- compile a Boolean function form (truth table with
                         don't-cares, multi-output, affine/XOR, LUT).
* ``engines``         -- list the synthesis engines and what they promise.
* ``build-db``        -- pre-compute and cache the BFS database.
* ``db``              -- manage on-disk stores: build/convert/info/verify/list.
* ``serve``           -- run the long-lived synthesis daemon (TCP/stdio).
* ``query``           -- query a running daemon.
* ``health``          -- a running daemon's resilience status.
* ``linear``          -- Table 5: all 4-bit linear reversible functions.
* ``random N``        -- size distribution of N random permutations.
* ``benchmarks``      -- synthesize the Table 6 benchmark suite.
* ``bench``           -- run a pinned perf suite / diff BENCH_*.json records.
* ``trace``           -- one-shot synthesis with span tracing enabled.
* ``check``           -- run the domain-aware static-analysis rules.
* ``info``            -- library and database information.

Every synthesis path goes through :mod:`repro.engines`: the CLI names an
engine, the registry builds the adapter, and the adapter owns the
concrete synthesizer.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro import __version__
from repro.errors import (
    ProtocolError,
    ReproError,
    ServiceError,
    SizeLimitExceededError,
)


def _add_synth_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--wires", type=int, default=4, help="wire count (default 4)"
    )
    parser.add_argument(
        "-k", type=int, default=6, help="BFS database depth (default 6)"
    )
    parser.add_argument(
        "--lists",
        type=int,
        default=None,
        help="list depth m; reachable size is k+m (default min(k,3))",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="do not read/write the cache"
    )


def _make_synthesizer(args):
    """The optimal engine's underlying synthesizer, for subcommands that
    use its database/search surface directly (build-db, random, ...)."""
    from repro.engines import create_engine

    return create_engine(
        "optimal",
        n_wires=args.wires,
        k=args.k,
        max_list_size=args.lists,
        cache_dir=False if args.no_cache else None,
        verbose=True,
    ).impl


_GUARANTEE_NOTES = {
    ("optimal", "gates"): "provably minimal",
    ("optimal", "depth"): "provably depth-minimal",
    ("heuristic", "gates"): "heuristic upper bound",
}


def cmd_synth(args) -> int:
    from repro.engines import SynthesisRequest, create_engine

    engine = create_engine(
        args.engine,
        n_wires=args.wires,
        k=args.k,
        max_list_size=args.lists,
        cache_dir=False if args.no_cache else None,
        verbose=True,
    )
    request = SynthesisRequest(spec=args.spec, n_wires=args.wires)
    try:
        result = engine.synthesize(request)
    except SizeLimitExceededError as exc:
        print(
            f"size out of reach for engine '{args.engine}' "
            f"(proven lower bound: {exc.lower_bound}); raise -k or --lists"
        )
        return 1
    note = _GUARANTEE_NOTES.get(
        (result.guarantee, result.metric), result.guarantee
    )
    print(f"specification : {result.spec}")
    print(f"engine        : {result.engine}")
    print(f"size          : {result.size} gates ({note})")
    print(f"circuit       : {result.circuit}")
    print(f"depth         : {result.depth}")
    print(f"NCV cost      : {result.cost}")
    print(f"query time    : {result.seconds:.4f}s")
    for key, value in sorted(result.extra.items()):
        print(f"  {key}: {value}")
    circuit = result.circuit_obj
    if circuit is None:
        return 0
    if args.draw:
        print(circuit.draw())
    if args.qasm:
        from repro.io.qasm import write_qasm

        write_qasm(
            circuit,
            args.qasm,
            comment=f"{result.engine} ({result.size} gates) for {result.spec}",
        )
        print(f"QASM written to {args.qasm}")
    if args.real:
        from repro.io.real_format import write_real

        write_real(
            circuit,
            args.real,
            comment=f"{result.engine} ({result.size} gates) for {result.spec}",
        )
        print(f".real written to {args.real}")
    return 0


def _read_compile_source(arg: str) -> str:
    """The spec text for ``repro compile``: inline, ``@file``, or stdin."""
    if arg == "-":
        return sys.stdin.read()
    if arg.startswith("@"):
        with open(arg[1:], encoding="utf-8") as handle:
            return handle.read()
    return arg


def _parse_compile_source(text: str):
    """JSON object -> :func:`repro.specs.spec_from_wire`; anything else
    is treated as ``.pla``-style cube text."""
    import json

    from repro.errors import SpecError
    from repro.specs import parse_pla, spec_from_wire

    stripped = text.strip()
    if stripped.startswith("{"):
        try:
            payload = json.loads(stripped)
        except json.JSONDecodeError as exc:
            raise SpecError(f"spec is not valid JSON: {exc}") from exc
        return spec_from_wire(payload)
    return parse_pla(text)


def cmd_compile(args) -> int:
    import json

    from repro.engines import create_engine
    from repro.errors import SynthesisError
    from repro.specs import compile_spec

    spec = _parse_compile_source(_read_compile_source(args.spec))
    engine = create_engine(
        args.engine,
        n_wires=args.wires,
        k=args.k,
        max_list_size=args.lists,
        cache_dir=False if args.no_cache else None,
        verbose=not args.json,
    )
    try:
        result = compile_spec(spec, engine, n_wires=args.wires,
                              samples=args.samples)
    except SynthesisError as exc:
        print(
            f"compile failed: {exc}; raise -k or --lists, or try "
            "--engine heuristic",
            file=sys.stderr,
        )
        return 1
    if args.json:
        # The same deterministic body the daemon would send (sans
        # transport fields) -- scripts and the compile-smoke CI job
        # parse this.
        print(json.dumps(result.to_wire(), separators=(",", ":"),
                         sort_keys=True))
        return 0
    plan = result.plan
    note = "provably minimal over all completions" \
        if result.guarantee == "optimal" else "upper bound"
    print(f"spec kind     : {result.spec.kind}")
    print(f"engine        : {result.engine}")
    print(f"size          : {result.size} gates ({note})")
    print(f"circuit       : {result.circuit}")
    print(f"depth         : {result.depth}")
    print(f"NCV cost      : {result.cost}")
    print(f"input wires   : {list(plan.input_wires)}")
    print(f"output wires  : {list(plan.output_wires)}")
    print(f"constant wires: {[list(p) for p in plan.constant_wires]}")
    print(f"garbage wires : {list(plan.garbage_wires)}")
    print(
        f"completions   : {result.completions_tried} tried "
        f"of {plan.partial.n_completions()} "
        f"({'exhaustive' if result.exhaustive else 'sampled'})"
    )
    print(f"permutation   : {result.permutation.spec()}")
    print(f"compile time  : {result.seconds:.4f}s")
    return 0


def cmd_engines(args) -> int:
    from repro.engines import (
        engine_capabilities,
        engine_names,
        engine_summary,
        servable_engine_names,
    )

    print(
        f"{'name':<10} {'guarantee':<10} {'metric':<7} {'spec':<12} "
        f"{'served':<7} {'cancel':<7} reach"
    )
    for name in engine_names():
        caps = engine_capabilities(name)
        print(
            f"{name:<10} {caps.guarantee:<10} {caps.metric:<7} "
            f"{caps.spec_kind:<12} {'yes' if caps.servable else 'no':<7} "
            f"{'yes' if caps.cancellable else 'no':<7} "
            f"{caps.reach}"
        )
        if args.verbose:
            print(f"{'':<10} {engine_summary(name)}")
    print(f"daemon-servable: {', '.join(servable_engine_names())}")
    return 0


def cmd_build_db(args) -> int:
    synth = _make_synthesizer(args)
    synth.prepare(force_rebuild=args.force)
    db = synth.database
    print(f"classes per size : {db.reduced_counts()}")
    print(f"functions per size: {db.function_counts()}")
    stats = db.table.stats()
    for row in stats.format_rows():
        print(row)
    return 0


def cmd_serve(args) -> int:
    from repro.service import ServiceConfig, SynthesisService, TCPDaemon, serve_stdio

    if args.shards:
        return _serve_sharded(args)
    resilience = {}
    if args.hard_timeout is not None:
        resilience["hard_timeout"] = args.hard_timeout
    if args.breaker_threshold is not None:
        resilience["breaker_failure_threshold"] = args.breaker_threshold
    if args.breaker_cooldown is not None:
        resilience["breaker_cooldown"] = args.breaker_cooldown
    config = ServiceConfig(
        n_wires=args.wires,
        k=args.k,
        max_list_size=args.lists,
        workers=args.workers,
        batch_window=args.batch_window / 1000.0,
        max_batch=args.max_batch,
        result_cache_path=args.result_cache,
        db_cache_dir=False if args.no_cache else None,
        verbose=not args.stdio,
        extra={
            key: value
            for key, value in (
                ("resilience", resilience),
                ("trace", args.trace),
            )
            if value
        },
    )
    service = SynthesisService.from_config(config)
    if args.stdio:
        serve_stdio(service)
        return 0
    daemon = TCPDaemon(service, host=args.host, port=args.port)
    host, port = daemon.address
    print(
        f"repro daemon listening on {host}:{port} "
        f"(n={args.wires}, k={args.k}, L={service.handle.max_size}, "
        f"workers={args.workers})",
        flush=True,
    )
    daemon.serve_forever()
    return 0


def _serve_sharded(args) -> int:
    """``repro serve --shards N``: a consistent-hash router over N
    single-owner shard daemons sharing one memory-mapped store."""
    from repro.service import TCPDaemon
    from repro.service.sharding import ShardCluster

    if args.stdio:
        print(
            "error: --stdio and --shards are mutually exclusive",
            file=sys.stderr,
        )
        return 2
    if args.no_cache:
        print(
            "error: --no-cache is incompatible with --shards "
            "(shards share one cached .rdb store)",
            file=sys.stderr,
        )
        return 2
    cluster = ShardCluster.launch(
        args.shards,
        n_wires=args.wires,
        k=args.k,
        max_list_size=args.lists,
        workers=args.workers,
    )
    router = cluster.router.start()
    daemon = TCPDaemon(router, host=args.host, port=args.port)
    host, port = daemon.address
    print(
        f"repro router listening on {host}:{port} "
        f"(shards={len(router.ring)}, n={args.wires}, k={args.k}, "
        f"epoch={router.ring.epoch})",
        flush=True,
    )
    daemon.serve_forever()
    return 0


def cmd_query(args) -> int:
    import json

    from repro.service import RetryPolicy, ServiceClient

    retry = RetryPolicy(retries=args.retries) if args.retries > 0 else None
    with ServiceClient(
        args.host,
        args.port,
        connect_timeout=args.connect_timeout,
        read_timeout=args.timeout,
        retry=retry,
    ) as client:
        if args.stats:
            print(json.dumps(client.stats(), indent=2, sort_keys=True))
            return 0
        if args.shutdown:
            client.shutdown()
            print("daemon draining")
            return 0
        specs = list(args.spec)
        if args.stdin:
            specs.extend(line.strip() for line in sys.stdin if line.strip())
        if not specs:
            print("error: no specs given (pass specs or --stdin)", file=sys.stderr)
            return 2
        failures = 0
        transport_failures = 0
        for spec in specs:
            try:
                if args.size_only:
                    print(
                        f"{spec} -> "
                        f"{client.size(spec, engine=args.engine, deadline_ms=args.deadline_ms)}"
                    )
                else:
                    result = client.synth(
                        spec, engine=args.engine, deadline_ms=args.deadline_ms
                    )
                    tag = result["source"]
                    if result.get("guarantee") == "upper_bound":
                        # Batched-path degradation reports the reason at
                        # the top level; engine-routed results (e.g. a
                        # deadline-degraded race) carry it in extra.
                        reason = result.get("degraded_reason") or result.get(
                            "extra", {}
                        ).get("degraded_reason")
                        tag += f", upper bound ({reason})"
                    print(
                        f"{spec} -> {result['size']} gates "
                        f"[{tag}]: {result['circuit']}"
                    )
            except SizeLimitExceededError as exc:
                print(f"{spec} -> size > bound (lower bound {exc.lower_bound})")
                failures += 1
            except ProtocolError as exc:
                # The daemon answered, but with an error envelope
                # (bad spec, unknown engine, ...).
                print(f"{spec} -> error: {exc}", file=sys.stderr)
                failures += 1
            except ServiceError as exc:
                # Transport broke mid-stream (daemon died, connection
                # dropped).  Report and keep going: the client reconnects
                # per request, so later specs may still succeed.
                print(
                    f"{spec} -> transport error: {exc}", file=sys.stderr
                )
                transport_failures += 1
        if transport_failures:
            return 3
        return 1 if failures else 0


#: ``repro health`` exit codes by reported status; anything unknown is
#: treated as degraded.  Probes and CI script against these: 0 = serve
#: traffic, 1 = investigate, 2 = draining (stop sending work).
_HEALTH_EXIT_CODES = {"ok": 0, "degraded": 1, "stopping": 2}


def cmd_health(args) -> int:
    import json

    from repro.service import ServiceClient

    with ServiceClient(
        args.host, args.port, connect_timeout=args.connect_timeout
    ) as client:
        body = client.health()
    print(json.dumps(body, indent=2, sort_keys=True))
    return _HEALTH_EXIT_CODES.get(body.get("status"), 1)


def cmd_shards(args) -> int:
    import json

    from repro.service import ServiceClient

    with ServiceClient(
        args.host,
        args.port,
        connect_timeout=args.connect_timeout,
        read_timeout=args.timeout,
    ) as client:
        if args.action == "status":
            print(json.dumps(client.shards(), indent=2, sort_keys=True))
            return 0
        if args.action == "join":
            summary = client.shard_join(args.shard)
            print(json.dumps(summary, indent=2, sort_keys=True))
            return 0
        # drain
        if not args.shard:
            print("error: drain needs --shard <id>", file=sys.stderr)
            return 2
        summary = client.shard_leave(args.shard)
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0 if summary.get("drained") else 1


def cmd_linear(args) -> int:
    from repro.engines import create_engine

    db = create_engine("linear", n_wires=args.wires).impl.database
    print("Size  Functions   (Table 5 of the paper)")
    for size in range(db.max_size, -1, -1):
        print(f"{size:<5d} {db.counts[size]}")
    print(f"total {db.total_functions}")
    return 0


def cmd_random(args) -> int:
    from repro.analysis.distribution import sample_distribution

    synth = _make_synthesizer(args)
    synth.prepare()
    dist = sample_distribution(
        synth.search_engine,
        args.count,
        seed=args.seed,
        n_wires=args.wires,
        progress=lambda done, total: print(f"  {done}/{total}", flush=True),
    )
    print(dist.format_table())
    if dist.observed:
        print(f"average size (observed): {dist.weighted_average():.2f}")
    if dist.censored:
        low, high = dist.weighted_average_bounds()
        print(f"average size (bounds incl. censored): [{low:.2f}, {high:.2f}]")
    return 0


def cmd_benchmarks(args) -> int:
    from repro.benchmarks_data import BENCHMARKS

    synth = _make_synthesizer(args)
    synth.prepare()
    print(f"{'Name':<10} {'SBKC':>5} {'SOC':>4} {'ours':>5} {'time':>9}")
    for bench in BENCHMARKS:
        start = time.perf_counter()
        size, exact = synth.size_or_bound(bench.permutation())
        elapsed = time.perf_counter() - start
        ours = str(size) if exact else f">={size}"
        sbkc = str(bench.best_known_size) if bench.best_known_size else "n/a"
        print(
            f"{bench.name:<10} {sbkc:>5} {bench.optimal_size:>4} {ours:>5} "
            f"{elapsed:>8.3f}s"
        )
    return 0


def cmd_bench(args) -> int:
    from pathlib import Path

    from repro.perf.bench import run_suite
    from repro.perf.compare import compare_records
    from repro.perf.env import bench_cache_dir
    from repro.perf.schema import BenchRecord, bench_filename
    from repro.perf.suites import suite_ops

    if args.list:
        for op in suite_ops(args.suite):
            print(op.name)
        return 0

    if args.input:
        record = BenchRecord.load(args.input)
    else:
        cache = None if args.no_cache else bench_cache_dir()
        record = run_suite(
            args.suite,
            cache_dir=cache,
            select=args.op or None,
            progress=lambda line: print(line, flush=True),
        )
        if args.output:
            target = Path(args.output)
            if target.is_dir():
                target = target / bench_filename(record.created_unix)
        else:
            target = Path.cwd() / bench_filename(record.created_unix)
        record.dump(target)
        print(f"wrote {target}")

    if not args.compare:
        return 0
    baseline = BenchRecord.load(args.compare)
    report = compare_records(
        record,
        baseline,
        tolerance_pct=args.tolerance,
        normalize=False if args.raw else None,
    )
    print(report.render())
    return 0 if report.ok else 1


def cmd_trace(args) -> int:
    import json

    import repro.perf as perf
    from repro.engines import SynthesisRequest, create_engine

    engine = create_engine(
        args.engine,
        n_wires=args.wires,
        k=args.k,
        max_list_size=args.lists,
        cache_dir=False if args.no_cache else None,
    ).prepare()
    tracer = perf.enable(max_roots=args.max_roots)
    tracer.reset()
    request = SynthesisRequest(spec=args.spec, n_wires=args.wires)
    try:
        result = engine.synthesize(request)
    except SizeLimitExceededError as exc:
        result = None
        lower_bound = exc.lower_bound
    finally:
        perf.disable()
    if args.json:
        body = {
            "spec": args.spec,
            "engine": args.engine,
            "size": result.size if result is not None else None,
            "spans": perf.spans_to_dicts(tracer.roots()),
            "aggregate": tracer.aggregate(),
        }
        print(json.dumps(body, indent=2, sort_keys=True))
        return 0 if result is not None else 1
    if result is not None:
        print(f"{result.spec} -> {result.size} gates ({result.engine})")
    else:
        print(f"{args.spec} -> size out of reach (lower bound {lower_bound})")
    print()
    for root in tracer.roots():
        print(perf.render_tree(root))
    print()
    print(perf.render_aggregate(tracer.aggregate()))
    return 0 if result is not None else 1


def cmd_peephole(args) -> int:
    from repro.apps.peephole import PeepholeOptimizer
    from repro.io.real_format import read_real, write_real

    circuit = read_real(args.input)
    synth = _make_synthesizer(args)
    synth.prepare()
    optimizer = PeepholeOptimizer(synth)
    report = optimizer.optimize(circuit)
    print(f"input : {circuit.gate_count} gates on {circuit.n_wires} wires")
    print(
        f"output: {report.optimized.gate_count} gates "
        f"({report.gates_saved} saved in {report.passes} pass(es), "
        f"{report.windows_replaced}/{report.windows_examined} windows improved)"
    )
    if args.output:
        write_real(
            report.optimized,
            args.output,
            comment=f"peephole-optimized from {args.input}",
        )
        print(f"written to {args.output}")
    return 0


def cmd_testgen(args) -> int:
    from repro.analysis.testgen import generate_suite

    synth = _make_synthesizer(args)
    synth.prepare()
    suite = generate_suite(
        synth.database, per_size=args.per_size, seed=args.seed
    )
    suite.save(args.output)
    by_size = suite.by_size()
    print(
        f"wrote {len(suite.cases)} cases "
        f"(sizes {min(by_size)}..{max(by_size)}) to {args.output}"
    )
    return 0


def cmd_libraries(args) -> int:
    from repro.synth.libraries import STANDARD_LIBRARIES, full_distribution

    print("exact optimal-size distributions over the full 3-bit group:")
    print(f"{'library':<7} {'gates':>5} {'L(3)':>5}  distribution")
    for maker in STANDARD_LIBRARIES.values():
        library = maker(3)
        dist = full_distribution(library)
        print(
            f"{library.name:<7} {len(library):>5} {len(dist) - 1:>5}  {dist}"
        )
    return 0


def cmd_clifford(args) -> int:
    from repro.engines import create_engine

    synth = create_engine("clifford", n_qubits=args.qubits).impl
    distribution = synth.distribution()
    print(
        f"|C_{args.qubits}| = {sum(distribution):,} Clifford operators "
        f"over {{H, S, S†, CNOT}}"
    )
    print("Size  Elements")
    for size in range(len(distribution) - 1, -1, -1):
        print(f"{size:<5d} {distribution[size]}")
    return 0


def cmd_check(args) -> int:
    from repro.checks import (
        all_rules,
        changed_python_files,
        check_paths,
        render_json,
        render_sarif,
        render_text,
    )
    from repro.checks.registry import select_rules

    if args.list_rules:
        for rule in all_rules():
            marker = " (graph)" if rule.project else ""
            print(f"{rule.id:<24} [{rule.family}] {rule.description}{marker}")
        return 0
    select = tuple(args.select) if args.select else None
    try:
        select_rules(select)  # validate --select before walking files
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    paths = list(args.paths)
    if args.changed:
        changed = changed_python_files()
        if changed is None:
            print(
                "warning: cannot determine changed files from git; "
                "checking the full tree",
                file=sys.stderr,
            )
        else:
            from repro.checks.runner import iter_python_files

            requested = {p.resolve() for p in iter_python_files(paths)}
            paths = [p for p in changed if p.resolve() in requested]
            if not paths:
                print("ok: no changed python files under the given paths")
                return 0
    cache = None
    if args.graph:
        from repro.checks.graph.cache import IndexCache, default_cache_dir

        cache_dir = args.cache_dir or default_cache_dir()
        cache = IndexCache(cache_dir) if cache_dir else None
    report = check_paths(paths, select=select, graph=args.graph, cache=cache)
    if args.format == "json":
        rendered = render_json(report)
    elif args.format == "sarif":
        rendered = render_sarif(report)
    else:
        rendered = render_text(report)
    print(rendered)
    return 0 if report.ok else 1


def cmd_arch(args) -> int:
    from repro.checks import load_config
    from repro.checks.graph import emit
    from repro.checks.graph.cache import IndexCache, default_cache_dir
    from repro.checks.graph.project import build_project
    from repro.checks.runner import iter_python_files

    config = load_config()
    cache_dir = args.cache_dir or default_cache_dir()
    cache = IndexCache(cache_dir) if cache_dir else None
    sources = []
    for path in iter_python_files(args.paths):
        try:
            sources.append((path.as_posix(), path.read_text(encoding="utf-8")))
        except (OSError, UnicodeDecodeError):
            continue
    project = build_project(sources, config, cache=cache)
    renderers = {
        ("imports", "dot"): emit.import_graph_dot,
        ("imports", "json"): emit.import_graph_json,
        ("locks", "dot"): emit.lock_graph_dot,
        ("locks", "json"): emit.lock_graph_json,
    }
    print(renderers[(args.what, args.format)](project.index).rstrip("\n"))
    return 0


def cmd_info(args) -> int:
    import numpy

    from repro.synth.synthesizer import default_cache_dir

    print(f"repro {__version__} (numpy {numpy.__version__})")
    print(f"cache directory: {default_cache_dir()}")
    cache = default_cache_dir()
    if cache.exists():
        for path in _cache_store_paths(cache):
            from repro.store import store_format

            print(
                f"  {path.name}  [{store_format(path)}]  "
                f"{path.stat().st_size / (1 << 20):.1f} MB"
            )
    return 0


def _cache_store_paths(cache):
    """All database store files (both formats) in a cache directory."""
    return sorted(
        list(cache.glob("*.npz")) + list(cache.glob("*.rdb")),
        key=lambda p: (p.stem, p.suffix),
    )


def cmd_cache(args) -> int:
    """List every cached database store with format, size, and stats."""
    from pathlib import Path

    from repro.errors import DatabaseError
    from repro.store import describe
    from repro.synth.synthesizer import default_cache_dir

    cache = Path(args.dir) if args.dir else default_cache_dir()
    if not cache.exists():
        print(f"cache directory {cache} does not exist")
        return 0
    paths = _cache_store_paths(cache)
    if not paths:
        print(f"cache directory {cache} holds no database stores")
        return 0
    print(f"cache directory: {cache}")
    failures = 0
    for path in paths:
        print(f"\n{path.name}")
        try:
            info = describe(path)
        except DatabaseError as exc:
            print(f"  UNREADABLE: {exc}")
            failures += 1
            continue
        for row in info.format_rows()[1:]:
            print(f"  {row}")
    return 1 if failures else 0


def cmd_db_build(args) -> int:
    """Build (or reuse) the database and persist it as an ``.rdb`` store."""
    from pathlib import Path

    from repro.store import describe, write_rdb

    synth = _make_synthesizer(args)
    synth.prepare(force_rebuild=args.force)
    if args.output:
        target = Path(args.output)
        write_rdb(synth.database, target)
    elif synth.store_path is not None:
        target = synth.store_path
        if not target.exists():
            write_rdb(synth.database, target)
    else:
        print(
            "error: --no-cache with no --output leaves nowhere to write",
            file=sys.stderr,
        )
        return 2
    info = describe(target)
    print(f"store written: {target}")
    for row in info.format_rows()[1:]:
        print(f"  {row}")
    return 0


def cmd_db_convert(args) -> int:
    from repro.store import convert

    convert(args.src, args.dst)
    print(f"converted {args.src} -> {args.dst}")
    return 0


def cmd_db_info(args) -> int:
    from repro.store import describe

    info = describe(args.path)
    for row in info.format_rows():
        print(row)
    return 0


def cmd_db_verify(args) -> int:
    from repro.errors import DatabaseError
    from repro.store import verify_store

    try:
        info = verify_store(args.path)
    except DatabaseError as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1
    print(f"OK: {info.path} ({info.format}, {info.entries} entries)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Optimal synthesis of 4-bit reversible circuits "
            "(Golubitsky, Falconer & Maslov, DAC 2010)"
        ),
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    from repro.engines import engine_names

    p_synth = sub.add_parser("synth", help="synthesize a circuit")
    p_synth.add_argument("spec", help='spec string, e.g. "[0,2,1,3,...]"')
    p_synth.add_argument(
        "--engine",
        default="optimal",
        choices=engine_names(),
        help="synthesis engine (default: optimal)",
    )
    p_synth.add_argument("--draw", action="store_true", help="ASCII drawing")
    p_synth.add_argument("--qasm", help="also write OpenQASM 2.0 to this file")
    p_synth.add_argument("--real", help="also write RevLib .real to this file")
    _add_synth_options(p_synth)
    p_synth.set_defaults(func=cmd_synth)

    p_compile = sub.add_parser(
        "compile",
        help="compile a Boolean function form (truth table with "
        "don't-cares, multi-output, affine/XOR, LUT) to a circuit",
    )
    p_compile.add_argument(
        "spec",
        help="spec as inline JSON ('{\"kind\": \"truth_table\", ...}') "
        "or .pla cube text; @FILE reads a file, '-' reads stdin",
    )
    p_compile.add_argument(
        "--engine",
        default="optimal",
        choices=engine_names(),
        help="synthesis engine (default: optimal)",
    )
    p_compile.add_argument(
        "--samples",
        type=int,
        default=200,
        help="sampled-regime completion budget (default 200)",
    )
    p_compile.add_argument(
        "--json",
        action="store_true",
        help="print the deterministic wire body instead of a report",
    )
    _add_synth_options(p_compile)
    p_compile.set_defaults(func=cmd_compile)

    p_engines = sub.add_parser(
        "engines", help="list the synthesis engines and their guarantees"
    )
    p_engines.add_argument(
        "-v", "--verbose", action="store_true",
        help="also print each engine's summary line",
    )
    p_engines.set_defaults(func=cmd_engines)

    p_build = sub.add_parser("build-db", help="pre-compute the database")
    p_build.add_argument("--force", action="store_true")
    _add_synth_options(p_build)
    p_build.set_defaults(func=cmd_build_db)

    p_serve = sub.add_parser(
        "serve", help="run the long-lived synthesis daemon"
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=7878, help="TCP port (0 = ephemeral)"
    )
    p_serve.add_argument(
        "--stdio",
        action="store_true",
        help="serve the JSONL protocol over stdin/stdout instead of TCP",
    )
    p_serve.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes for hard queries (0 = inline)",
    )
    p_serve.add_argument(
        "--shards",
        type=int,
        default=0,
        help="run a sharded cluster: N shard daemons behind a "
        "consistent-hash router (0 = single daemon)",
    )
    p_serve.add_argument(
        "--batch-window",
        type=float,
        default=2.0,
        help="batch coalescing window in milliseconds (default 2)",
    )
    p_serve.add_argument(
        "--max-batch", type=int, default=256, help="maximum batch size"
    )
    p_serve.add_argument(
        "--result-cache",
        help="persistent result-cache JSON file (loaded at start, "
        "saved at shutdown)",
    )
    p_serve.add_argument(
        "--hard-timeout",
        type=float,
        default=None,
        help="seconds one hard-query batch may run before the worker "
        "pool is presumed dead and restarted (default 120)",
    )
    p_serve.add_argument(
        "--breaker-threshold",
        type=int,
        default=None,
        help="consecutive hard-path failures that trip the circuit "
        "breaker open (default 5)",
    )
    p_serve.add_argument(
        "--breaker-cooldown",
        type=float,
        default=None,
        help="seconds the breaker stays open before probing (default 30)",
    )
    p_serve.add_argument(
        "--trace",
        action="store_true",
        help="enable span tracing; per-span histograms appear in stats",
    )
    _add_synth_options(p_serve)
    p_serve.set_defaults(func=cmd_serve)

    p_query = sub.add_parser("query", help="query a running daemon")
    p_query.add_argument("spec", nargs="*", help="spec strings to synthesize")
    p_query.add_argument("--host", default="127.0.0.1")
    p_query.add_argument("--port", type=int, default=7878)
    p_query.add_argument(
        "--timeout",
        type=float,
        default=60.0,
        help="seconds to wait for each response (read timeout)",
    )
    p_query.add_argument(
        "--connect-timeout",
        type=float,
        default=5.0,
        help="seconds to wait for the TCP handshake",
    )
    p_query.add_argument(
        "--retries",
        type=int,
        default=2,
        help="retry attempts with backoff for safe failures (0 = off)",
    )
    p_query.add_argument(
        "--deadline-ms",
        type=int,
        default=None,
        help="server-side latency budget per query; hard queries that "
        "cannot fit it return an upper-bound answer instead of blocking",
    )
    p_query.add_argument(
        "--engine",
        default=None,
        help="daemon-side engine to answer with (default: optimal)",
    )
    p_query.add_argument(
        "--size-only", action="store_true", help="only report gate counts"
    )
    p_query.add_argument(
        "--stdin", action="store_true", help="read extra specs from stdin"
    )
    p_query.add_argument(
        "--stats", action="store_true", help="print the daemon's stats"
    )
    p_query.add_argument(
        "--shutdown", action="store_true", help="drain and stop the daemon"
    )
    p_query.set_defaults(func=cmd_query)

    p_health = sub.add_parser(
        "health",
        help="print a running daemon's resilience status "
        "(exit 0 = ok, 1 = degraded, 2 = stopping)",
    )
    p_health.add_argument("--host", default="127.0.0.1")
    p_health.add_argument("--port", type=int, default=7878)
    p_health.add_argument("--connect-timeout", type=float, default=5.0)
    p_health.set_defaults(func=cmd_health)

    p_shards = sub.add_parser(
        "shards", help="inspect or reshape a sharded router"
    )
    p_shards.add_argument(
        "action",
        choices=["status", "drain", "join"],
        help="status: membership rollup; drain: live-leave a shard "
        "(--shard required); join: spawn and add a shard",
    )
    p_shards.add_argument("--shard", help="target shard id")
    p_shards.add_argument("--host", default="127.0.0.1")
    p_shards.add_argument("--port", type=int, default=7878)
    p_shards.add_argument("--connect-timeout", type=float, default=5.0)
    p_shards.add_argument(
        "--timeout",
        type=float,
        default=120.0,
        help="seconds to wait for the response (drain waits for "
        "in-flight work)",
    )
    p_shards.set_defaults(func=cmd_shards)

    p_linear = sub.add_parser("linear", help="Table 5: linear functions")
    p_linear.add_argument("--wires", type=int, default=4)
    p_linear.set_defaults(func=cmd_linear)

    p_random = sub.add_parser("random", help="random-permutation distribution")
    p_random.add_argument("count", type=int)
    p_random.add_argument("--seed", type=int, default=5489)
    _add_synth_options(p_random)
    p_random.set_defaults(func=cmd_random)

    p_bench = sub.add_parser("benchmarks", help="Table 6 benchmark suite")
    _add_synth_options(p_bench)
    p_bench.set_defaults(func=cmd_benchmarks)

    p_perf = sub.add_parser(
        "bench",
        help="run a pinned perf suite, write BENCH_*.json, diff baselines",
    )
    p_perf.add_argument(
        "--suite", choices=("quick", "full"), default="quick",
        help="which pinned suite to run (default: quick)",
    )
    p_perf.add_argument(
        "--output", "-o", default=None,
        help="output file or directory (default: ./BENCH_<timestamp>.json)",
    )
    p_perf.add_argument(
        "--input", default=None,
        help="compare an existing BENCH_*.json instead of running the suite",
    )
    p_perf.add_argument(
        "--compare", metavar="BASELINE", default=None,
        help="diff against this baseline record; exit 1 on regression",
    )
    p_perf.add_argument(
        "--tolerance", type=float, default=25.0,
        help="regression threshold in percent (default 25)",
    )
    p_perf.add_argument(
        "--raw", action="store_true",
        help="compare raw medians (skip calibration normalization)",
    )
    p_perf.add_argument(
        "--op", action="append", metavar="NAME",
        help="run only this op (repeatable; calibration always runs)",
    )
    p_perf.add_argument(
        "--list", action="store_true", help="list the suite's ops and exit"
    )
    p_perf.add_argument(
        "--no-cache", action="store_true",
        help="do not read/write the benchmark database cache",
    )
    p_perf.set_defaults(func=cmd_bench)

    p_trace = sub.add_parser(
        "trace", help="synthesize once with span tracing and show the trees"
    )
    p_trace.add_argument("spec", help='spec string, e.g. "[0,2,1,3,...]"')
    p_trace.add_argument(
        "--engine",
        default="optimal",
        choices=engine_names(),
        help="synthesis engine (default: optimal)",
    )
    p_trace.add_argument(
        "--json", action="store_true", help="emit span trees as JSON"
    )
    p_trace.add_argument(
        "--max-roots", type=int, default=64,
        help="most recent root spans to keep (default 64)",
    )
    _add_synth_options(p_trace)
    p_trace.set_defaults(func=cmd_trace)

    p_peep = sub.add_parser(
        "peephole", help="optimize a .real circuit via optimal resynthesis"
    )
    p_peep.add_argument("input", help="input .real file")
    p_peep.add_argument("-o", "--output", help="output .real file")
    _add_synth_options(p_peep)
    p_peep.set_defaults(func=cmd_peephole)

    p_testgen = sub.add_parser(
        "testgen", help="generate a heuristic-evaluation test suite"
    )
    p_testgen.add_argument("output", help="output suite file")
    p_testgen.add_argument("--per-size", type=int, default=10)
    p_testgen.add_argument("--seed", type=int, default=5489)
    _add_synth_options(p_testgen)
    p_testgen.set_defaults(func=cmd_testgen)

    p_libs = sub.add_parser(
        "libraries", help="compare gate libraries (NCT/NCTS/NCTSF/NCP)"
    )
    p_libs.set_defaults(func=cmd_libraries)

    p_clifford = sub.add_parser(
        "clifford", help="optimal Clifford (stabilizer) circuit table"
    )
    p_clifford.add_argument("--qubits", type=int, default=2, choices=(1, 2))
    p_clifford.set_defaults(func=cmd_clifford)

    p_check = sub.add_parser(
        "check", help="run the domain-aware static-analysis rules"
    )
    p_check.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to check (default: src)",
    )
    p_check.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="output format (default: text)",
    )
    p_check.add_argument(
        "--select", action="append", metavar="RULE",
        help="run only this rule id or family (repeatable)",
    )
    p_check.add_argument(
        "--list-rules", action="store_true", help="list rules and exit"
    )
    p_check.add_argument(
        "--graph", action="store_true",
        help="add the whole-program pass (lock-order-cycle, "
        "cross-unmasked-op, layer-violation)",
    )
    p_check.add_argument(
        "--changed", action="store_true",
        help="only check .py files changed since merge-base with "
        "origin/main (falls back to the full tree without git)",
    )
    p_check.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="per-file index cache directory for --graph "
        "(default: $REPRO_CHECKS_CACHE when set, else no cache)",
    )
    p_check.set_defaults(func=cmd_check)

    p_arch = sub.add_parser(
        "arch", help="dump whole-program import/lock graphs (DOT or JSON)"
    )
    p_arch.add_argument(
        "what", choices=("imports", "locks"),
        help="which graph to emit",
    )
    p_arch.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to index (default: src)",
    )
    p_arch.add_argument(
        "--format", choices=("dot", "json"), default="dot",
        help="output format (default: dot)",
    )
    p_arch.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="per-file index cache directory "
        "(default: $REPRO_CHECKS_CACHE when set, else no cache)",
    )
    p_arch.set_defaults(func=cmd_arch)

    p_db = sub.add_parser(
        "db", help="manage on-disk database stores (.rdb / legacy .npz)"
    )
    db_sub = p_db.add_subparsers(dest="db_command", required=True)

    p_db_build = db_sub.add_parser(
        "build", help="build the database and persist an .rdb store"
    )
    p_db_build.add_argument("--force", action="store_true")
    p_db_build.add_argument(
        "-o", "--output", default=None,
        help="write the .rdb here instead of the cache sidecar",
    )
    _add_synth_options(p_db_build)
    p_db_build.set_defaults(func=cmd_db_build)

    p_db_convert = db_sub.add_parser(
        "convert", help="convert between .npz and .rdb store formats"
    )
    p_db_convert.add_argument("src", help="source store (.npz or .rdb)")
    p_db_convert.add_argument("dst", help="destination store (.npz or .rdb)")
    p_db_convert.set_defaults(func=cmd_db_convert)

    p_db_info = db_sub.add_parser(
        "info", help="print a store's parameters and Table 2 statistics"
    )
    p_db_info.add_argument("path", help="store file (.npz or .rdb)")
    p_db_info.set_defaults(func=cmd_db_info)

    p_db_verify = db_sub.add_parser(
        "verify",
        help="full integrity pass: header, checksum, probe consistency "
        "(exit 1 on failure)",
    )
    p_db_verify.add_argument("path", help="store file (.npz or .rdb)")
    p_db_verify.set_defaults(func=cmd_db_verify)

    p_db_list = db_sub.add_parser(
        "list", help="list cached stores with format, size, and stats"
    )
    p_db_list.add_argument(
        "--dir", default=None,
        help="cache directory to list (default: the library cache)",
    )
    p_db_list.set_defaults(func=cmd_cache)

    p_info = sub.add_parser("info", help="library and cache information")
    p_info.set_defaults(func=cmd_info)
    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
