"""repro: optimal synthesis of 4-bit reversible circuits.

A from-scratch reproduction of Golubitsky, Falconer & Maslov, "Synthesis
of the Optimal 4-bit Reversible Circuits" (DAC 2010; arXiv:1003.1914).

Quick start::

    from repro import OptimalSynthesizer

    synth = OptimalSynthesizer(k=5, max_list_size=3)
    circuit = synth.synthesize("[1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,0]")
    print(circuit)   # TOF4(a,b,c,d) TOF(a,b,c) CNOT(a,b) NOT(a)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

from repro.core import CNOT, NOT, TOF, TOF4, Circuit, Gate, Permutation, all_gates
from repro.errors import (
    InvalidCircuitError,
    InvalidGateError,
    InvalidPermutationError,
    ReproError,
    SizeLimitExceededError,
    SynthesisError,
)
from repro.synth import MeetInTheMiddleSearch, OptimalDatabase, OptimalSynthesizer

__version__ = "1.0.0"

__all__ = [
    # core model
    "Circuit",
    "Gate",
    "Permutation",
    "NOT",
    "CNOT",
    "TOF",
    "TOF4",
    "all_gates",
    # synthesis
    "OptimalSynthesizer",
    "OptimalDatabase",
    "MeetInTheMiddleSearch",
    # errors
    "ReproError",
    "InvalidPermutationError",
    "InvalidGateError",
    "InvalidCircuitError",
    "SynthesisError",
    "SizeLimitExceededError",
    "__version__",
]
